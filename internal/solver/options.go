// Package solver implements the paper's algorithms: standard PCG (Alg. 1),
// the three-term-recurrence PCG3 baseline, the original monomial-basis
// s-step method sPCGmon (Alg. 2), the paper's contribution sPCG with
// arbitrary basis types (Alg. 5 + 6), CA-PCG (Alg. 3) and CA-PCG3 (Alg. 4).
//
// All solvers share an instrumented execution context: every length-n
// operation is counted and (optionally) charged against a dist.Tracker, so a
// single run yields both the numerical result and the modeled distributed
// cost that the paper's Tables 3 and Figure 1 report.
package solver

import (
	"errors"
	"fmt"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/eig"
	"spcg/internal/fault"
	"spcg/internal/obs"
	"spcg/internal/sparse"
)

// Criterion selects the convergence test, matching the three used in the
// paper's evaluation.
type Criterion int

const (
	// TrueResidual2Norm stops when ‖b−Ax‖₂ ≤ tol·‖b−Ax⁰‖₂, computed
	// explicitly (Table 2's criterion; costs one extra SpMV per check).
	TrueResidual2Norm Criterion = iota
	// RecursiveResidual2Norm uses the recursively updated residual's 2-norm
	// (Table 3 columns 2–5; its local dot is fused into an existing global
	// reduction).
	RecursiveResidual2Norm
	// RecursiveResidualMNorm uses √(rᵀM⁻¹r) of the recursive residual
	// (Table 3 columns 6–9 and Figure 1; free — every solver already
	// computes rᵀu).
	RecursiveResidualMNorm
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case TrueResidual2Norm:
		return "true-2norm"
	case RecursiveResidual2Norm:
		return "recursive-2norm"
	case RecursiveResidualMNorm:
		return "recursive-mnorm"
	default:
		return fmt.Sprintf("solver.Criterion(%d)", int(c))
	}
}

// Options configures a solver run. The zero value is usable: s defaults to
// 10 (the paper's main setting), basis to Chebyshev, tolerance to 1e−9 and
// the iteration cap to 12000, mirroring §5.2.
type Options struct {
	// Operator, when non-nil, replaces the CSR argument on the hot kernel
	// path (SpMV, block SpMV, fused basis step): the format selector hands
	// solvers a SELL-C-σ conversion of the same matrix here. It must
	// represent exactly the matrix passed to the solver — kernels are
	// interchangeable, diagnostics (Diag, Gershgorin, Ritz probes) still
	// read the CSR. Dimension mismatches are rejected like any other.
	Operator sparse.Matrix
	// S is the s-step block size (ignored by PCG/PCG3).
	S int
	// Basis selects the s-step basis type (ignored by PCG/PCG3 and sPCGmon,
	// which is monomial by construction).
	Basis basis.Type
	// BasisParams overrides the generated basis parameters when non-nil.
	BasisParams *basis.Params
	// Spectrum supplies the λ estimates for Chebyshev/Newton bases. When
	// nil and needed, it is computed with eig.RitzFromPCG (the paper's
	// "a few iterations of standard PCG", excluded from timings).
	Spectrum *eig.Estimate
	// Tol is the relative residual reduction (default 1e−9).
	Tol float64
	// MaxIterations caps total PCG-equivalent iterations (default 12000;
	// the paper's divergence cutoff).
	MaxIterations int
	// Criterion selects the convergence test.
	Criterion Criterion
	// Tracker, when non-nil, charges the distributed cost model.
	Tracker *dist.Tracker
	// X0 is the initial guess (default zero vector).
	X0 []float64
	// HistoryEvery records the criterion value every k checks into
	// Stats.History (0 = record every check).
	HistoryEvery int
	// ResidualReplacement enables the Carson–Demmel style extension for
	// SPCG and SPCGMon: the recursive residual is replaced by the true
	// residual b−Ax at outer iterations where it has drifted, improving the
	// maximum attainable accuracy (§1 cites this as a known stabilization).
	// The CA-PCG variants rebuild their residual representation from the
	// basis each outer iteration and ignore this option.
	ResidualReplacement bool
	// Float32Gram makes SPCG accumulate its Gram matrices in single
	// precision — the mixed-precision setting studied by Carson, Gergelits &
	// Yamazaki (paper ref. [5]). Halves the reduction bandwidth in exchange
	// for a ~1e-7 relative floor on the Scalar Work inputs; useful as an
	// ablation of precision sensitivity.
	Float32Gram bool
	// Injector, when non-nil, injects seeded soft errors into the solver's
	// SpMV outputs and residual updates (see internal/fault). Strictly
	// opt-in: a nil Injector leaves every iterate bit-identical to a run
	// without fault support.
	Injector *fault.Injector
	// DetectEvery enables corruption detection every k iterations (PCG) or
	// every k outer iterations (s-step methods): the recursive residual is
	// compared against an explicitly recomputed true residual, the
	// residual-replacement-style divergence test. 0 disables detection.
	DetectEvery int
	// CheckpointEvery sets the checkpoint cadence in the same units as
	// DetectEvery (default: DetectEvery). Checkpoints snapshot the solver
	// state only after a detection probe has passed, so a rollback never
	// restores corrupted state.
	CheckpointEvery int
	// DetectTol is the detection threshold: ‖(b−Ax) − r‖₂ > DetectTol·‖b‖₂
	// flags corruption (default 1e−8, ≈√ε above the drift of a healthy run).
	DetectTol float64
	// MaxRollbacks caps checkpoint restorations per run (default 100); the
	// cap exhausting is reported as a breakdown.
	MaxRollbacks int
	// Cancel, when non-nil, requests cooperative cancellation: the solver
	// polls the channel at every (outer) iteration and, once it is closed,
	// stops and returns ErrCancelled together with the partial solution and
	// Stats reached so far. Pass a context's Done() channel to bound the
	// wall-time of a solve (the solve service's deadline plumbing).
	Cancel <-chan struct{}
	// Trace, when non-nil, records per-phase wall-time spans and collective
	// counts into the given tracer (see internal/obs); the aggregated
	// breakdown is returned in Stats.Phases. Strictly pay-for-use: a nil
	// Trace reduces every instrumentation site to one predictable branch.
	// When a Tracker is also set, its halo-exchange events are mirrored
	// into the trace.
	Trace *obs.Tracer
	// OnProgress, when non-nil, is called at every convergence check with the
	// current PCG-equivalent iteration count and the relative criterion
	// value — a heartbeat for live observers such as the solve service's
	// stagnation watchdog (internal/resilience). The callback runs on the
	// solver's goroutine between iterations and must be cheap and
	// non-blocking. SPCGAdaptive rebases the iteration count so the cascade
	// reports a single monotone stream across phases.
	OnProgress func(iterations int, relative float64)
}

func (o Options) withDefaults() Options {
	if o.S <= 0 {
		o.S = 10
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 12000
	}
	return o
}

// Stats reports what a solver run did. Iterations are PCG-equivalent steps
// (s-step methods count s per outer iteration), matching how the paper's
// Table 2 reports them.
type Stats struct {
	// Converged reports whether the criterion was met within the cap.
	Converged bool
	// Iterations is the number of PCG-equivalent iterations at the moment
	// the criterion was met (or the cap/breakdown hit).
	Iterations int
	// OuterIterations counts outer (block) iterations for s-step methods;
	// equals Iterations for PCG/PCG3.
	OuterIterations int
	// FinalRelative is the last criterion value relative to its initial.
	FinalRelative float64
	// TrueRelResidual is ‖b−Ax‖₂/‖b−Ax⁰‖₂ of the returned x, always
	// computed once at the end (not charged to the cost model).
	TrueRelResidual float64
	// History holds the relative criterion values at each recorded check.
	History []float64
	// Heartbeats counts convergence checks — the progress beats mirrored to
	// Options.OnProgress when it is set.
	Heartbeats int
	// BestRelative is the smallest relative criterion value observed at any
	// check (+Inf until the first check). Stagnation watchdogs compare
	// against it; SPCGAdaptive carries the minimum across cascade phases.
	BestRelative float64
	// MVProducts, PrecApplies, Allreduces, AllreduceValues count the
	// communication-relevant events (also mirrored in the tracker).
	MVProducts, PrecApplies, Allreduces, AllreduceValues int
	// SimTime is the tracker's modeled wall-clock time (0 when untracked).
	SimTime float64
	// Breakdown records the numerical breakdown that stopped the run early,
	// if any (the run still returns the best x reached).
	Breakdown error
	// ResidualReplacements counts how often the residual-replacement
	// extension fired.
	ResidualReplacements int
	// Restarts counts regression restarts of the s-step block coupling
	// (the search-direction history is dropped when the convergence
	// criterion bounces well above its best value; see SPCG).
	Restarts int
	// DetectedFaults counts detection probes that flagged a corrupted state
	// (Options.DetectEvery > 0).
	DetectedFaults int
	// Rollbacks counts checkpoint restorations performed after detected
	// faults or numerical breakdowns.
	Rollbacks int
	// RetriedMessages mirrors the tracker's fault-model communication
	// retries (0 when untracked or the machine has no fault model).
	RetriedMessages int
	// Phases is the per-phase wall-time/collective breakdown of the run,
	// present only when Options.Trace was set (the aggregate view of the
	// tracer; raw spans stay on the tracer itself).
	Phases []obs.PhaseStat
}

// ErrBreakdown wraps numerical breakdowns (singular Gram systems,
// non-finite coefficients): the condition shown as "-" in the paper's
// Table 2.
var ErrBreakdown = errors.New("solver: numerical breakdown")

// ErrDimension reports mismatched operand sizes.
var ErrDimension = errors.New("solver: dimension mismatch")

// ErrCancelled reports that a solve stopped because Options.Cancel fired.
// Unlike breakdowns it is returned as the error value — but the partial
// solution and Stats are still returned alongside it, so a timed-out request
// can report how far it got. A run whose iterate already satisfies the
// tolerance when cancellation is observed reports convergence instead.
var ErrCancelled = errors.New("solver: cancelled")
