package mpk

import (
	"math"
	"math/rand"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// countingOp wraps a CSR and counts MulVec calls.
type countingOp struct {
	a     *sparse.CSR
	calls int
}

func (c *countingOp) Dim() int { return c.a.Dim() }
func (c *countingOp) MulVec(dst, src []float64) {
	c.calls++
	c.a.MulVec(dst, src)
}

type countingPrec struct {
	m     precond.Interface
	calls int
}

func (c *countingPrec) Apply(dst, src []float64) {
	c.calls++
	c.m.Apply(dst, src)
}

func TestMonomialIdentityPreconditioner(t *testing.T) {
	// With M = I and the monomial basis, S_l = Aˡ·w exactly.
	rng := rand.New(rand.NewSource(1))
	a := sparse.Poisson2D(5, 5)
	n := a.Dim()
	w := randVec(rng, n)
	s := 4
	S := vec.NewBlock(n, s+1)
	U := vec.NewBlock(n, s)
	op := &countingOp{a: a}
	pm := &countingPrec{m: precond.NewIdentity(n)}
	if err := Compute(op, pm, basis.MonomialParams(s), w, nil, S, U); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), w...)
	tmp := make([]float64, n)
	for l := 0; l <= s; l++ {
		for i := range want {
			if math.Abs(S.Col(l)[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("S col %d row %d: %v vs %v", l, i, S.Col(l)[i], want[i])
			}
		}
		if l < s {
			// U_l == S_l for identity M.
			for i := range want {
				if U.Col(l)[i] != S.Col(l)[i] {
					t.Fatalf("U col %d differs from S col %d", l, l)
				}
			}
		}
		a.MulVec(tmp, want)
		want, tmp = tmp, want
	}
	if op.calls != s {
		t.Fatalf("SpMV calls = %d, want %d", op.calls, s)
	}
	if pm.calls != s { // u0 nil → 1 extra + (s−1)
		t.Fatalf("prec calls = %d, want %d", pm.calls, s)
	}
}

func TestU0Provided(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sparse.Poisson1D(30)
	n := a.Dim()
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	w := randVec(rng, n)
	u0 := make([]float64, n)
	m.Apply(u0, w)
	s := 3
	S := vec.NewBlock(n, s+1)
	U := vec.NewBlock(n, s)
	pm := &countingPrec{m: m}
	if err := Compute(&countingOp{a: a}, pm, basis.MonomialParams(s), w, u0, S, U); err != nil {
		t.Fatal(err)
	}
	if pm.calls != s-1 {
		t.Fatalf("prec calls = %d, want %d", pm.calls, s-1)
	}
}

func TestUIsMInvS(t *testing.T) {
	// For every basis type: U_l == M⁻¹·S_l.
	rng := rand.New(rand.NewSource(3))
	a := sparse.Poisson2D(6, 6)
	n := a.Dim()
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.1, 8.0
	ritz := []float64{0.5, 3, 7}
	s := 5
	for _, typ := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		params, err := basis.New(typ, s, lo, hi, ritz)
		if err != nil {
			t.Fatal(err)
		}
		w := randVec(rng, n)
		S := vec.NewBlock(n, s+1)
		U := vec.NewBlock(n, s+1) // full-width U exercises the extra column
		if err := Compute(&countingOp{a: a}, m, params, w, nil, S, U); err != nil {
			t.Fatal(err)
		}
		tmp := make([]float64, n)
		for l := 0; l <= s; l++ {
			m.Apply(tmp, S.Col(l))
			for i := 0; i < n; i++ {
				if math.Abs(U.Col(l)[i]-tmp[i]) > 1e-10*(1+math.Abs(tmp[i])) {
					t.Fatalf("%v: U col %d != M⁻¹S col %d at row %d", typ, l, l, i)
				}
			}
		}
	}
}

func TestChangeOfBasisIdentityAU(t *testing.T) {
	// The paper's §3 identity: AU⁽ᵏ⁾ = S⁽ᵏ⁾·B with B = B_{s+1}, for every
	// basis type. This is the contract the sPCG solver relies on.
	rng := rand.New(rand.NewSource(4))
	a := sparse.Poisson2D(7, 5)
	n := a.Dim()
	m, err := precond.NewChebyshev(a, 2, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := 4
	for _, typ := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		params, err := basis.New(typ, s, 0.2, 8, []float64{1, 4, 7})
		if err != nil {
			t.Fatal(err)
		}
		w := randVec(rng, n)
		S := vec.NewBlock(n, s+1)
		U := vec.NewBlock(n, s)
		if err := Compute(&countingOp{a: a}, m, params, w, nil, S, U); err != nil {
			t.Fatal(err)
		}
		b := params.ChangeOfBasis(s + 1) // (s+1)×s
		au := make([]float64, n)
		sb := make([]float64, n)
		for j := 0; j < s; j++ {
			a.MulVec(au, U.Col(j))
			vec.Zero(sb)
			for i := 0; i <= s; i++ {
				vec.Axpy(b.At(i, j), S.Col(i), sb)
			}
			for r := 0; r < n; r++ {
				if math.Abs(au[r]-sb[r]) > 1e-8*(1+math.Abs(au[r])) {
					t.Fatalf("%v: AU != SB at col %d row %d: %v vs %v", typ, j, r, au[r], sb[r])
				}
			}
		}
	}
}

func TestComputeValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	n := a.Dim()
	m := precond.NewIdentity(n)
	w := make([]float64, n)
	params := basis.MonomialParams(3)
	cases := []struct {
		name string
		s, u *vec.Block
		w    []float64
		p    *basis.Params
	}{
		{"S too narrow", vec.NewBlock(n, 1), vec.NewBlock(n, 1), w, params},
		{"U wrong width", vec.NewBlock(n, 4), vec.NewBlock(n, 2), w, params},
		{"degree too low", vec.NewBlock(n, 5), vec.NewBlock(n, 4), w, params},
		{"bad w length", vec.NewBlock(n, 4), vec.NewBlock(n, 3), make([]float64, 3), params},
		{"wrong rows", vec.NewBlock(n+1, 4), vec.NewBlock(n+1, 3), w, params},
	}
	for _, tc := range cases {
		if err := Compute(&countingOp{a: a}, m, tc.p, tc.w, nil, tc.s, tc.u); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	bad := basis.MonomialParams(3)
	bad.Gamma[0] = 0
	if err := Compute(&countingOp{a: a}, m, bad, w, nil, vec.NewBlock(n, 4), vec.NewBlock(n, 3)); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestChebyshevBasisBetterConditioned(t *testing.T) {
	// The motivating numerical fact of the paper: for s = 10, the monomial
	// basis Gram matrix is catastrophically ill-conditioned while the
	// Chebyshev basis (on a decent spectral interval) stays usable.
	a := sparse.Poisson1D(100)
	n := a.Dim()
	m := precond.NewIdentity(n)
	lo := 2 - 2*math.Cos(math.Pi/101)
	hi := 2 - 2*math.Cos(100*math.Pi/101)
	s := 10
	rng := rand.New(rand.NewSource(5))
	w := randVec(rng, n)
	cond := map[basis.Type]float64{}
	for _, typ := range []basis.Type{basis.Monomial, basis.Chebyshev} {
		params, err := basis.New(typ, s, lo, hi, nil)
		if err != nil {
			t.Fatal(err)
		}
		S := vec.NewBlock(n, s+1)
		U := vec.NewBlock(n, s)
		if err := Compute(&countingOp{a: a}, m, params, w, nil, S, U); err != nil {
			t.Fatal(err)
		}
		// Condition of the basis via the Gram matrix SᵀS: κ₂(S)² = κ₂(SᵀS).
		g := vec.Gram(S, S)
		gm := matFromSlice(s+1, g)
		cond[typ] = condSPD(gm)
	}
	if cond[basis.Monomial] < 1e12 {
		t.Fatalf("monomial Gram condition %v unexpectedly good", cond[basis.Monomial])
	}
	if cond[basis.Chebyshev] > 1e10 {
		t.Fatalf("Chebyshev Gram condition %v unexpectedly bad", cond[basis.Chebyshev])
	}
	if cond[basis.Chebyshev]*1e4 > cond[basis.Monomial] {
		t.Fatalf("Chebyshev (%v) not clearly better than monomial (%v)", cond[basis.Chebyshev], cond[basis.Monomial])
	}
}

// matFromSlice and condSPD adapt dense helpers without importing dense in
// the main test body twice.
