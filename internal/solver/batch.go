package solver

import (
	"fmt"
	"math"

	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// BatchPCG solves the k independent systems A·x_j = b_j (the columns of bs)
// with k preconditioned-CG recurrences advanced in lockstep. Each column
// keeps its own scalars (α, β, ρ) and convergence state — the iterates are
// bit-identical to k separate PCG runs — but the per-iteration SpMV is one
// block product over all still-active columns (sparse.MulBlockPar /
// vec.Block), so A is streamed once per iteration instead of once per
// system. This is the solve service's request-coalescing kernel: concurrent
// requests against the same matrix within the batching window become columns
// of one BatchPCG call.
//
// Columns freeze individually as they converge or break down; the loop runs
// until every column is frozen, the iteration cap is reached, or
// Options.Cancel fires (ErrCancelled, partial per-column Stats). Convergence
// uses the recursive-residual criteria; TrueResidual2Norm is mapped to
// RecursiveResidual2Norm (the explicit per-column check would cost an extra
// block SpMV per iteration), and Stats.TrueRelResidual is still reported
// from the final iterates. Batch runs serve wall-clock traffic and are not
// charged to the distributed cost model (Options.Tracker is ignored).
func BatchPCG(a *sparse.CSR, m precond.Interface, bs *vec.Block, opts Options) (*vec.Block, []*Stats, error) {
	opts = opts.withDefaults()
	if a == nil {
		return nil, nil, fmt.Errorf("%w: nil matrix", ErrDimension)
	}
	n := a.Dim()
	if m == nil {
		m = precond.NewIdentity(n)
	}
	if m.Dim() != n {
		return nil, nil, fmt.Errorf("%w: matrix n=%d, preconditioner n=%d", ErrDimension, n, m.Dim())
	}
	if bs == nil || bs.S() == 0 {
		return nil, nil, fmt.Errorf("%w: empty right-hand-side block", ErrDimension)
	}
	if bs.N != n {
		return nil, nil, fmt.Errorf("%w: rhs rows=%d, n=%d", ErrDimension, bs.N, n)
	}
	var op sparse.Matrix = a
	if opts.Operator != nil {
		if opts.Operator.Dim() != n {
			return nil, nil, fmt.Errorf("%w: matrix n=%d, operator n=%d", ErrDimension, n, opts.Operator.Dim())
		}
		op = opts.Operator
	}
	k := bs.S()

	x := vec.NewBlock(n, k)
	r := vec.NewBlock(n, k)
	u := vec.NewBlock(n, k)
	p := vec.NewBlock(n, k)
	s := vec.NewBlock(n, k)

	stats := make([]*Stats, k)
	rho := make([]float64, k)
	initial := make([]float64, k)
	active := make([]bool, k)

	mnorm := opts.Criterion == RecursiveResidualMNorm
	for j := 0; j < k; j++ {
		stats[j] = &Stats{BestRelative: math.Inf(1)}
		// x⁰ = 0 ⇒ r⁰ = b_j directly; batched requests carry no X0.
		vec.Copy(r.Col(j), bs.Col(j))
		m.Apply(u.Col(j), r.Col(j))
		stats[j].PrecApplies++
		vec.Copy(p.Col(j), u.Col(j))
		rho[j] = vec.Dot(r.Col(j), u.Col(j))
		if !finite(rho[j]) || rho[j] < 0 {
			stats[j].Breakdown = fmt.Errorf("%w: initial rᵀM⁻¹r = %v (column %d)", ErrBreakdown, rho[j], j)
			continue
		}
		if mnorm {
			initial[j] = math.Sqrt(rho[j])
		} else {
			initial[j] = vec.Norm2(r.Col(j))
		}
		if initial[j] == 0 {
			stats[j].Converged = true // zero rhs: x = 0 solves it
			continue
		}
		active[j] = true
	}

	cancelled := false
	remaining := k
	for j := range active {
		if !active[j] {
			remaining--
		}
	}
	// Column views over the active subset, reused each iteration so the
	// 2-D (columns × row-blocks) batched SpMV sees one contiguous block.
	pAct := &vec.Block{N: n, Cols: make([][]float64, 0, k)}
	sAct := &vec.Block{N: n, Cols: make([][]float64, 0, k)}
	for i := 0; i < opts.MaxIterations && remaining > 0; i++ {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				cancelled = true
			default:
			}
			if cancelled {
				break
			}
		}
		// Block SpMV over the active columns only: frozen columns cost
		// nothing, and the active ones share one 2-D pool dispatch.
		pAct.Cols = pAct.Cols[:0]
		sAct.Cols = sAct.Cols[:0]
		for j := 0; j < k; j++ {
			if active[j] {
				pAct.Cols = append(pAct.Cols, p.Col(j))
				sAct.Cols = append(sAct.Cols, s.Col(j))
				stats[j].MVProducts++
			}
		}
		op.MulBlockPar(sAct, pAct)
		// The block heartbeat reports the worst (largest) relative value among
		// the columns advanced this iteration: the watchdog only declares the
		// whole batch stagnant when even the slowest member stops improving.
		worst := 0.0
		advanced := false
		for j := 0; j < k; j++ {
			if !active[j] {
				continue
			}
			st := stats[j]
			den := vec.Dot(p.Col(j), s.Col(j))
			if !finite(den) || den <= 0 {
				st.Breakdown = fmt.Errorf("%w: pᵀAp = %v at iteration %d (column %d)", ErrBreakdown, den, i, j)
				active[j] = false
				remaining--
				continue
			}
			alpha := rho[j] / den
			vec.Axpy(alpha, p.Col(j), x.Col(j))
			vec.Axpy(-alpha, s.Col(j), r.Col(j))
			m.Apply(u.Col(j), r.Col(j))
			st.PrecApplies++
			rhoNew := vec.Dot(r.Col(j), u.Col(j))
			if !finite(rhoNew) || rhoNew < 0 {
				st.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at iteration %d (column %d)", ErrBreakdown, rhoNew, i, j)
				active[j] = false
				remaining--
				continue
			}
			beta := rhoNew / rho[j]
			rho[j] = rhoNew
			vec.XpayInto(p.Col(j), u.Col(j), beta, p.Col(j))

			st.Iterations = i + 1
			st.OuterIterations = i + 1
			var val float64
			if mnorm {
				val = math.Sqrt(rhoNew)
			} else {
				val = vec.Norm2(r.Col(j))
			}
			st.FinalRelative = val / initial[j]
			if st.FinalRelative < st.BestRelative {
				st.BestRelative = st.FinalRelative
			}
			st.Heartbeats++
			advanced = true
			if st.FinalRelative > worst {
				worst = st.FinalRelative
			}
			if st.FinalRelative <= opts.Tol {
				st.Converged = true
				active[j] = false
				remaining--
			}
		}
		if advanced && opts.OnProgress != nil {
			opts.OnProgress(i+1, worst)
		}
	}

	for j := 0; j < k; j++ {
		stats[j].TrueRelResidual = rawTrueRelResidual(a, bs.Col(j), x.Col(j), nil)
		if !stats[j].Converged && stats[j].TrueRelResidual <= opts.Tol {
			stats[j].Converged = true
		}
	}
	if cancelled {
		return x, stats, ErrCancelled
	}
	return x, stats, nil
}
