package sparse

import "sort"

// RCM computes the reverse Cuthill–McKee ordering of a structurally
// symmetric matrix: perm[new] = old. Applying it clusters nonzeros near the
// diagonal, which shrinks the ghost regions of block-row partitions — the
// halo-volume lever for the distributed runs (see dist and spmd).
// Disconnected components are handled by restarting from the minimum-degree
// unvisited vertex.
func RCM(a *CSR) []int {
	n := a.Dim()
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		degree[i] = a.RowNNZ(i)
	}

	// Vertices sorted by degree for start-vertex selection.
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(x, y int) bool { return degree[byDegree[x]] < degree[byDegree[y]] })

	queue := make([]int, 0, n)
	neighbors := make([]int, 0, 32)
	nextStart := 0
	for len(perm) < n {
		// Find the lowest-degree unvisited vertex to seed the next component.
		for nextStart < n && visited[byDegree[nextStart]] {
			nextStart++
		}
		start := byDegree[nextStart]
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm = append(perm, v)
			neighbors = neighbors[:0]
			for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
				j := a.ColIdx[k]
				if j != v && !visited[j] {
					visited[j] = true
					neighbors = append(neighbors, j)
				}
			}
			sort.Slice(neighbors, func(x, y int) bool { return degree[neighbors[x]] < degree[neighbors[y]] })
			queue = append(queue, neighbors...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Permute returns P·A·Pᵀ for the permutation perm (perm[new] = old): row and
// column new of the result are row and column perm[new] of a.
func Permute(a *CSR, perm []int) *CSR {
	n := a.Dim()
	if len(perm) != n {
		panic("sparse: Permute length mismatch")
	}
	inv := make([]int, n)
	for newIdx, old := range perm {
		inv[old] = newIdx
	}
	out := &CSR{N: n, RowPtr: make([]int, n+1)}
	out.ColIdx = make([]int, 0, a.NNZ())
	out.Val = make([]float64, 0, a.NNZ())
	type entry struct {
		col int
		val float64
	}
	row := make([]entry, 0, a.MaxRowNNZ())
	for newIdx := 0; newIdx < n; newIdx++ {
		old := perm[newIdx]
		row = row[:0]
		for k := a.RowPtr[old]; k < a.RowPtr[old+1]; k++ {
			row = append(row, entry{inv[a.ColIdx[k]], a.Val[k]})
		}
		sort.Slice(row, func(x, y int) bool { return row[x].col < row[y].col })
		for _, e := range row {
			out.ColIdx = append(out.ColIdx, e.col)
			out.Val = append(out.Val, e.val)
		}
		out.RowPtr[newIdx+1] = len(out.Val)
	}
	return out
}

// PermuteVec returns x reordered so that out[new] = x[perm[new]].
func PermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for newIdx, old := range perm {
		out[newIdx] = x[old]
	}
	return out
}

// UnpermuteVec inverts PermuteVec: out[perm[new]] = x[new].
func UnpermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for newIdx, old := range perm {
		out[old] = x[newIdx]
	}
	return out
}

// Bandwidth returns the matrix bandwidth max |i−j| over stored entries.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - a.ColIdx[k]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
