package solver

import (
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/mpk"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// CAPCG3 solves A·x = b with Hoemmen's communication-avoiding three-term
// PCG (paper Algorithm 4). Each outer iteration builds the s+1-column basis
// W⁽ᵏ⁾ of K_{s+1}(AM⁻¹, r) plus V⁽ᵏ⁾ = M⁻¹W⁽ᵏ⁾, keeps the previous outer
// iteration's s residuals R⁽ᵏ⁻¹⁾ (and U⁽ᵏ⁻¹⁾ = M⁻¹R⁽ᵏ⁻¹⁾) as the rest of
// the basis, and computes the Gram matrix
//
//	G⁽ᵏ⁾ = [U⁽ᵏ⁻¹⁾, V⁽ᵏ⁾]ᵀ · [R⁽ᵏ⁻¹⁾, W⁽ᵏ⁾]
//
// with a single global reduction. The s inner iterations run Rutishauser's
// three-term recurrences, forming w = A·u and v = M⁻¹A·u without
// communication via auxiliary coefficient vectors d = T·g, where T is the
// change-of-basis map: on the W block it is B_{s+1} of Eq. (9); on the
// R⁽ᵏ⁻¹⁾ block it inverts the previous outer iteration's own three-term
// recurrence using its saved (ρ, γ) scalars.
//
// The updates of x, r, u (and the n-vector gathers for w, v) are BLAS1,
// which is the performance drawback the paper's §4.1 identifies.
func CAPCG3(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	s := opts.S
	params, err := resolveBasis(a, c.m, &opts)
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	dim := 2*s + 1
	r := make([]float64, n)
	u := make([]float64, n)
	w := make([]float64, n)
	v := make([]float64, n)
	xPrev := make([]float64, n)
	rPrev := make([]float64, n)
	uPrev := make([]float64, n)
	xNext := make([]float64, n)
	rNext := make([]float64, n)
	uNext := make([]float64, n)
	scratch := make([]float64, n)

	wBlock := vec.NewBlock(n, s+1) // W⁽ᵏ⁾
	vBlock := vec.NewBlock(n, s+1) // V⁽ᵏ⁾ = M⁻¹W⁽ᵏ⁾
	rOld := vec.NewBlock(n, s)     // R⁽ᵏ⁻¹⁾ (zero at k=0)
	uOld := vec.NewBlock(n, s)     // U⁽ᵏ⁻¹⁾
	rNew := vec.NewBlock(n, s)
	uNew := vec.NewBlock(n, s)
	rw := &vec.Block{N: n, Cols: append(append([][]float64{}, rOld.Cols...), wBlock.Cols...)}
	uv := &vec.Block{N: n, Cols: append(append([][]float64{}, uOld.Cols...), vBlock.Cols...)}

	bMat := params.ChangeOfBasis(s + 1) // (s+1)×s, W-block recurrence

	// Previous outer iteration's inner scalars (for the R-block of T).
	gammaOld := make([]float64, s)
	rhoOld := make([]float64, s)

	// Cross-boundary three-term recurrence state.
	rho := 1.0
	var gammaPrev, muPrev, rhoPrev float64

	// Coefficient vectors.
	g := make([]float64, dim)
	gPrev := make([]float64, dim)
	gNext := make([]float64, dim)
	d := make([]float64, dim)
	tmp := make([]float64, dim)

	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))

	var ck *checker
	maxOuter := (opts.MaxIterations + s - 1) / s
	globalStep := 0

	for k := 0; k <= maxOuter; k++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		c.applyM(u, r)
		rho0 := c.localDot(r, u)
		if !finite(rho0) || rho0 < 0 {
			stats.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at outer iteration %d", ErrBreakdown, rho0, k)
			break
		}
		var critVal float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			critVal = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			critVal = math.Sqrt(c.localDot(r, r))
		case RecursiveResidualMNorm:
			critVal = math.Sqrt(rho0)
		}
		if ck == nil {
			ck = newChecker(opts, critVal, stats)
		}
		if ck.done(critVal) {
			stats.Converged = true
			break
		}
		if k == maxOuter || k*s >= opts.MaxIterations {
			break
		}

		// Basis: W⁽ᵏ⁾ spans K_{s+1}(AM⁻¹, r), V⁽ᵏ⁾ = M⁻¹W⁽ᵏ⁾ (full width):
		// s MVs + s preconditioner applications (u⁽ˢᵏ⁾ is in hand).
		if err := mpk.Compute(mpkOp{c}, mpkPrec{c}, params, r, u, wBlock, vBlock); err != nil {
			stats.Breakdown = fmt.Errorf("%w: matrix powers kernel: %v", ErrBreakdown, err)
			break
		}

		// Gram matrix: the single global reduction.
		gm := dense.FromRowMajor(dim, dim, c.gramLocal(uv, rw))
		payload := dim * dim
		if opts.Criterion == RecursiveResidual2Norm {
			payload++
		}
		c.allreduce(payload)

		// Change-of-basis map T: AM⁻¹·[R⁽ᵏ⁻¹⁾, W⁽ᵏ⁾] = [R⁽ᵏ⁻¹⁾, W⁽ᵏ⁾]·T.
		t := dense.NewMat(dim, dim)
		for i := 0; i <= s; i++ {
			for j := 0; j < s; j++ {
				t.Set(s+i, s+j, bMat.At(i, j))
			}
		}
		if k > 0 {
			// Invert the previous block's recurrence
			// r⁽ᵗ⁺¹⁾ = ρ(r⁽ᵗ⁾ − γ·AM⁻¹r⁽ᵗ⁾) + (1−ρ)r⁽ᵗ⁻¹⁾:
			// AM⁻¹r⁽ᵗ⁾ = [ρ·r⁽ᵗ⁾ + (1−ρ)·r⁽ᵗ⁻¹⁾ − r⁽ᵗ⁺¹⁾]/(ρ·γ).
			// Column 0 (t = s(k−1)) would need r⁽ˢ⁽ᵏ⁻¹⁾⁻¹⁾, which is no
			// longer in the basis — but no inner step ever uses it
			// (coefficients reach only down to column 1).
			for i := 1; i < s; i++ {
				rg := rhoOld[i] * gammaOld[i]
				if rg == 0 || !finite(rg) {
					continue // breakdown already recorded when it happened
				}
				t.Add(i, i, rhoOld[i]/rg)
				t.Add(i-1, i, (1-rhoOld[i])/rg)
				next := i + 1
				if i == s-1 {
					next = s // r⁽ˢᵏ⁾ = W⁽ᵏ⁾ column 0
				}
				t.Add(next, i, -1/rg)
			}
		}

		// Coefficient vectors: r⁽ˢᵏ⁾ = W₀ → g = e_s; r⁽ˢᵏ⁻¹⁾ = last column
		// of R⁽ᵏ⁻¹⁾ → gPrev = e_{s−1} (zero vector at k = 0).
		for i := range g {
			g[i], gPrev[i] = 0, 0
		}
		g[s] = 1
		if k > 0 {
			gPrev[s-1] = 1
		}

		broke := false
		for j := 0; j < s; j++ {
			matVec(t, g, d)
			mu := quadForm(gm, g, tmp)
			nu := bilinear(gm, g, d, tmp)
			if !finite(mu, nu) || nu <= 0 || mu < 0 {
				stats.Breakdown = fmt.Errorf("%w: μ=%v ν=%v at iteration %d", ErrBreakdown, mu, nu, globalStep)
				broke = true
				break
			}
			gamma := mu / nu
			if globalStep > 0 {
				den := 1 - (gamma/gammaPrev)*(mu/muPrev)*(1/rhoPrev)
				if den == 0 || !finite(den) {
					stats.Breakdown = fmt.Errorf("%w: ρ recurrence denominator %v at iteration %d", ErrBreakdown, den, globalStep)
					broke = true
					break
				}
				rho = 1 / den
			}

			// Record this step's residual pair for the next outer basis.
			vec.Copy(rNew.Col(j), r)
			vec.Copy(uNew.Col(j), u)
			gammaOld[j], rhoOld[j] = gamma, rho

			// w = A·u and v = M⁻¹A·u, gathered without communication.
			c.blockMulVec(w, rw, d)
			c.blockMulVec(v, uv, d)

			// Three-term BLAS1 updates.
			c.threeTermUpdate(xNext, rho, x, -gamma, u, xPrev)
			c.threeTermUpdate(rNext, rho, r, gamma, w, rPrev)
			c.threeTermUpdate(uNext, rho, u, gamma, v, uPrev)
			xPrev, x, xNext = x, xNext, xPrev
			rPrev, r, rNext = r, rNext, rPrev
			uPrev, u, uNext = u, uNext, uPrev

			// Coefficient recurrence (O(s), negligible cost).
			for i := range gNext {
				gNext[i] = rho*(g[i]-gamma*d[i]) + (1-rho)*gPrev[i]
			}
			gPrev, g, gNext = g, gNext, gPrev

			gammaPrev, muPrev, rhoPrev = gamma, mu, rho
			globalStep++
		}

		rOld.CopyFrom(rNew)
		uOld.CopyFrom(uNew)
		stats.OuterIterations = k + 1
		stats.Iterations = globalStep
		if broke || !finite(r[0]) {
			if stats.Breakdown == nil {
				stats.Breakdown = fmt.Errorf("%w: residual diverged at outer iteration %d", ErrBreakdown, k)
			}
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}
