package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spcg/internal/resilience"
)

// breakdownReq deterministically breaks down: the monomial basis at s=8 on
// the strongly anisotropic operator produces a singular Gram system within a
// couple of outer iterations (see the paper's ill-conditioning discussion),
// so the solve ends done-but-not-converged — a breaker failure signal.
func breakdownReq() SolveRequest {
	return SolveRequest{
		Matrix: "aniso2d:30:0.0001", Method: "spcg", S: 8,
		Basis: "monomial", Precond: "identity", NoBatch: true,
	}
}

func waitJob(t *testing.T, j *job, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(timeout):
		t.Fatalf("job %s did not reach a terminal state within %s (state=%s)", j.id, timeout, j.status().State)
	}
	return j.status()
}

// TestPanicIsolationKeepsDaemonAlive: a panicking solve becomes a failed job
// with a stack-tagged error; the worker survives and keeps serving.
func TestPanicIsolationKeepsDaemonAlive(t *testing.T) {
	s := New(Config{
		Workers: 2, StagnationWindow: -1, BreakerFailures: -1,
		BatchWindow: 100 * time.Millisecond,
		Chaos:       &ChaosConfig{Seed: 7, PanicProb: 1}, // every solo solve panics
	})
	defer shutdownServer(t, s)

	for i := 0; i < 3; i++ {
		j, err := s.Submit(SolveRequest{Matrix: "poisson2d:16", Method: "pcg", NoBatch: true})
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j, 30*time.Second)
		if st.State != JobFailed {
			t.Fatalf("panicking job %d: state = %s, want failed (%+v)", i, st.State, st.Result)
		}
		if !strings.Contains(st.Result.Error, "injected panic") {
			t.Errorf("panicking job %d: error %q does not name the panic", i, st.Result.Error)
		}
		if !strings.Contains(st.Result.Error, "goroutine") {
			t.Errorf("panicking job %d: error %q carries no stack", i, st.Result.Error)
		}
	}
	// Coalesced block solves bypass the solo-path injection (a singleton batch
	// still runs solo, so submit two that coalesce): the same workers that
	// just absorbed three panics still solve correctly.
	var block []*job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(SolveRequest{Matrix: "poisson2d:16", Method: "pcg"})
		if err != nil {
			t.Fatal(err)
		}
		block = append(block, j)
	}
	for i, j := range block {
		if st := waitJob(t, j, 30*time.Second); st.State != JobDone || !st.Result.Converged {
			t.Fatalf("post-panic solve %d: state=%s result=%+v", i, st.State, st.Result)
		}
	}
	m := s.Metrics()
	if m.Resilience.SolverPanics != 3 {
		t.Errorf("solver_panics_total = %d, want 3", m.Resilience.SolverPanics)
	}
}

// TestStagnationWatchdogKillsStalledSolve: a solve grinding at the residual
// floor is killed by the watchdog well before its wall-clock deadline and
// reported as stagnated, not cancelled.
func TestStagnationWatchdogKillsStalledSolve(t *testing.T) {
	s := New(Config{
		Workers: 1, BreakerFailures: -1,
		WatchdogInterval: 20 * time.Millisecond, StagnationWindow: 250 * time.Millisecond,
	})
	defer shutdownServer(t, s)

	const deadline = 20 * time.Second
	j, err := s.Submit(SolveRequest{
		Matrix: "poisson2d:64", Method: "pcg", Precond: "identity",
		Tol: 1e-300, MaxIters: 500000, TimeoutMS: int(deadline / time.Millisecond), NoBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j, deadline)
	if st.State != JobStagnated {
		t.Fatalf("state = %s, want stagnated (%+v)", st.State, st.Result)
	}
	if !strings.Contains(st.Result.Error, "stagnated") || !strings.Contains(st.Result.Error, "no residual progress") {
		t.Errorf("stagnation error %q lacks the watchdog diagnosis", st.Result.Error)
	}
	if st.Result.Iterations == 0 {
		t.Errorf("watchdog kill should report partial stats: %+v", st.Result)
	}
	if st.Started == nil || st.Finished == nil {
		t.Fatalf("terminal job missing timestamps: %+v", st)
	}
	if ran := st.Finished.Sub(*st.Started); ran >= deadline/2 {
		t.Errorf("stagnated solve ran %s, want well under half the %s deadline", ran, deadline)
	}
	if got := s.Metrics().Resilience.Stagnated; got != 1 {
		t.Errorf("stagnated_total = %d, want 1", got)
	}
}

// TestBreakerOpensAndDegrades: repeated breakdowns open the circuit for
// (matrix, spcg, s=8) and the next request runs the adaptive cascade instead,
// converging and recording the downgrade.
func TestBreakerOpensAndDegrades(t *testing.T) {
	s := New(Config{
		Workers: 1, StagnationWindow: -1,
		BreakerFailures: 2, BreakerCooldown: time.Hour, // no probes mid-test
	})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		j, err := s.Submit(breakdownReq())
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j, 30*time.Second)
		if st.State != JobDone || st.Result.Converged || st.Result.Breakdown == "" {
			t.Fatalf("breakdown run %d: state=%s result=%+v", i, st.State, st.Result)
		}
		if st.Result.Method != "spcg" || st.Result.DegradedFrom != "" {
			t.Fatalf("breakdown run %d ran %q (degraded from %q), want the fast path", i, st.Result.Method, st.Result.DegradedFrom)
		}
	}

	// Third request: the breaker is open, so the ladder reroutes to the
	// adaptive s-halving cascade — which survives the breakdown and converges.
	j, err := s.Submit(breakdownReq())
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j, 30*time.Second)
	if st.State != JobDone || !st.Result.Converged {
		t.Fatalf("degraded solve: state=%s result=%+v", st.State, st.Result)
	}
	if st.Result.Method != "adaptive" || st.Result.DegradedFrom != "spcg" {
		t.Errorf("degraded solve ran %q degraded from %q, want adaptive from spcg", st.Result.Method, st.Result.DegradedFrom)
	}

	m := s.Metrics()
	if m.Resilience.BreakerOpened != 1 || m.Resilience.DegradedSolves != 1 || m.Resilience.BreakersOpen != 1 {
		t.Errorf("breaker metrics = %+v, want opened=1 degraded=1 open=1", m.Resilience)
	}
	if m.Resilience.Health != "degraded" {
		t.Errorf("health = %q, want degraded while a breaker is open", m.Resilience.Health)
	}
	hs := s.HealthSnapshot()
	if len(hs.OpenBreakers) != 1 || !strings.Contains(hs.OpenBreakers[0], "spcg(s=8)") {
		t.Errorf("open breakers = %v, want the spcg(s=8) circuit", hs.OpenBreakers)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while degraded: HTTP %d, want 200 (degraded still serves)", resp.StatusCode)
	}
}

// TestBreakerProbeRestoresFastPath: after the cooldown a half-open probe runs
// the gated method again; a success closes the circuit and restores health.
func TestBreakerProbeRestoresFastPath(t *testing.T) {
	s := New(Config{
		Workers: 1, StagnationWindow: -1,
		BreakerFailures: 1, BreakerCooldown: 200 * time.Millisecond,
	})
	defer shutdownServer(t, s)

	j, err := s.Submit(breakdownReq())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j, 30*time.Second); st.Result.Converged {
		t.Fatalf("expected a breakdown, got %+v", st.Result)
	}
	if got := s.Metrics().Resilience.BreakerOpened; got != 1 {
		t.Fatalf("breaker_opened_total = %d, want 1 after a single failure (Failures=1)", got)
	}

	time.Sleep(300 * time.Millisecond) // past the cooldown: next request probes

	// Same breaker key (matrix, spcg, s=8) but a well-conditioned basis and
	// preconditioner: the probe succeeds and the circuit closes.
	probe := breakdownReq()
	probe.Basis, probe.Precond = "chebyshev", "jacobi"
	j, err = s.Submit(probe)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j, 30*time.Second)
	if st.State != JobDone || !st.Result.Converged {
		t.Fatalf("probe solve: state=%s result=%+v", st.State, st.Result)
	}
	if st.Result.Method != "spcg" || st.Result.DegradedFrom != "" {
		t.Errorf("probe ran %q (degraded from %q), want the fast path back", st.Result.Method, st.Result.DegradedFrom)
	}

	m := s.Metrics()
	if m.Resilience.BreakerRestored != 1 || m.Resilience.BreakersOpen != 0 {
		t.Errorf("after probe: restored=%d open=%d, want 1/0", m.Resilience.BreakerRestored, m.Resilience.BreakersOpen)
	}
	if m.Resilience.Health != "healthy" {
		t.Errorf("health = %q, want healthy after restore", m.Resilience.Health)
	}
}

// TestLoadSheddingAndHealthz: saturation returns 429 + Retry-After and flips
// health to degraded; shutdown flips it to draining with a 503.
func TestLoadSheddingAndHealthz(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, StagnationWindow: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz idle: HTTP %d", resp.StatusCode)
	}
	if h := s.Health(); h != resilience.Healthy {
		t.Fatalf("idle health = %s, want healthy", h)
	}

	blocker, err := s.Submit(SolveRequest{
		Matrix: "poisson2d:96", Method: "pcg", Precond: "identity",
		Tol: 1e-300, MaxIters: 500000, NoBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The queue (depth 1) is full: the next submission is shed with a hint.
	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:12", Method: "pcg"})
	_ = st
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", code)
	}
	resp, err = http.Post(ts.URL+"/solve", "application/json", strings.NewReader(`{"matrix":"poisson2d:12"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("shed response: HTTP %d Retry-After=%q, want 429 with a hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if h := s.Health(); h != resilience.Degraded {
		t.Errorf("health after shedding = %s, want degraded", h)
	}
	if rate := s.Metrics().Resilience.ShedRate; rate <= 0 {
		t.Errorf("shed_rate = %v, want > 0", rate)
	}

	blocker.cancel()
	<-blocker.done
	shutdownServer(t, s)

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("/healthz draining: HTTP %d Retry-After=%q, want 503 with a hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if h := s.Health(); h != resilience.Draining {
		t.Errorf("health after shutdown = %s, want draining", h)
	}
}

// TestBatchMemberCancelMidBlock: cancelling one member of a coalesced block
// solve never aborts its companions — the survivors converge, and the block's
// outcome is recorded as a block solve.
func TestBatchMemberCancelMidBlock(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16, BatchWindow: 100 * time.Millisecond, BatchMax: 3, StagnationWindow: -1})
	defer shutdownServer(t, s)

	req := SolveRequest{Matrix: "poisson2d:128", Method: "pcg", Precond: "identity", Tol: 1e-10}
	var jobs []*job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(req) // BatchMax 3: the third submission flushes the batch
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Wait for the block to start, then cancel one member mid-solve.
	for deadline := time.Now().Add(10 * time.Second); jobs[0].status().Started == nil; {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	jobs[0].cancel()

	states := make([]JobStatus, 3)
	for i, j := range jobs {
		states[i] = waitJob(t, j, 30*time.Second)
	}
	// Survivors: complete, converged, and solved as part of a block.
	for i := 1; i < 3; i++ {
		st := states[i]
		if st.State != JobDone || st.Result == nil || !st.Result.Converged {
			t.Errorf("survivor %d: state=%s result=%+v, want done+converged", i, st.State, st.Result)
		}
		if !st.Result.Batched || st.Result.BatchSize < 2 {
			t.Errorf("survivor %d: batched=%v size=%d, want a block of ≥ 2", i, st.Result.Batched, st.Result.BatchSize)
		}
	}
	// The cancelled member: cancelled if the cancel landed mid-solve, done if
	// the block beat it — never failed, and never blocking its companions.
	switch st := states[0]; st.State {
	case JobCancelled:
	case JobDone:
		if !st.Result.Converged {
			t.Errorf("cancelled member finished done but unconverged: %+v", st.Result)
		}
	default:
		t.Errorf("cancelled member: state=%s, want cancelled or done", st.State)
	}
	if got := s.Metrics().Batching.BlockSolves; got < 1 {
		t.Errorf("block_solves = %d, want ≥ 1", got)
	}
}

// TestValidationLimits: hostile resource parameters are rejected at admission
// with ErrLimitExceeded (HTTP 400), before any allocation happens.
func TestValidationLimits(t *testing.T) {
	s := New(Config{Workers: 1, MaxRequestIters: 1000, MaxRequestS: 8, MaxMatrixDim: 1000})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	over := []struct {
		name string
		req  SolveRequest
	}{
		{"max_iters", SolveRequest{Matrix: "poisson2d:8", MaxIters: 1001}},
		{"s", SolveRequest{Matrix: "poisson2d:8", Method: "spcg", S: 9}},
		{"matrix dim", SolveRequest{Matrix: "poisson2d:64"}}, // 4096 > 1000
		{"dim overflow", SolveRequest{Matrix: "poisson3d:2000000000"}},
		{"dim overflow 3d", SolveRequest{Matrix: "varcoeff3d:3000000:10"}},
	}
	for _, tc := range over {
		_, err := s.Submit(tc.req)
		if !errors.Is(err, ErrLimitExceeded) {
			t.Errorf("%s: err = %v, want ErrLimitExceeded", tc.name, err)
		}
	}
	// HTTP mapping: a limit violation is the client's fault.
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(`{"matrix":"poisson2d:64"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit violation over HTTP: %d, want 400", resp.StatusCode)
	}
	// Exactly at the limits is fine.
	j, err := s.Submit(SolveRequest{Matrix: "poisson2d:8", Method: "spcg", S: 8, MaxIters: 1000})
	if err != nil {
		t.Fatalf("at-limit request rejected: %v", err)
	}
	if st := waitJob(t, j, 30*time.Second); st.State != JobDone {
		t.Errorf("at-limit solve: state=%s (%+v)", st.State, st.Result)
	}
}
