package solver

import (
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/mpk"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// SPCG solves A·x = b with the paper's contribution: the s-step PCG method
// of Chronopoulos & Gear generalized to arbitrary basis types (Algorithm 5
// with the "Scalar Work" of Algorithm 6). Per outer iteration it computes
// the s+1-column basis matrix S⁽ᵏ⁾ and its preconditioned companion U⁽ᵏ⁾
// with the matrix powers kernel, performs a single global reduction (the
// fused Gram matrices UᵀS and PᵀS), solves two s×s systems for the block
// coefficients a⁽ᵏ⁾ and B⁽ᵏ⁾, and advances s PCG steps with BLAS3-style
// block updates:
//
//	P⁽ᵏ⁾  = U⁽ᵏ⁾  + P⁽ᵏ⁻¹⁾·B⁽ᵏ⁾      AU⁽ᵏ⁾ = S⁽ᵏ⁾·B   (change of basis)
//	AP⁽ᵏ⁾ = S⁽ᵏ⁾·B + AP⁽ᵏ⁻¹⁾·B⁽ᵏ⁾
//	x     += P⁽ᵏ⁾·a⁽ᵏ⁾                r −= AP⁽ᵏ⁾·a⁽ᵏ⁾
//
// One deliberate deviation from the printed Algorithm 6 is documented in
// DESIGN.md: the B⁽ᵏ⁾ system is solved with the transpose orientation that
// the A-orthogonality condition P⁽ᵏ⁾ᵀAP⁽ᵏ⁻¹⁾ = 0 actually requires.
func SPCG(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	return runSStep(a, m, b, opts, false)
}

// SPCGMon solves A·x = b with the original monomial-basis s-step PCG of
// Chronopoulos & Gear (Algorithm 2, "sPCG_mon"). It differs from
// SPCG-with-monomial-basis in how the Scalar Work forms its small matrices:
// the matrix of moments U⁽ᵏ⁾ᵀAU⁽ᵏ⁾ and the right-hand side R⁽ᵏ⁾ᵀu⁽ᵏ⁾ are
// reconstructed from the 2s moment values μ_l = rᵀ(M⁻¹A)ˡu (a Hankel fill)
// instead of being measured directly — mathematically equivalent, but with
// different rounding behaviour (paper §3.2, final paragraph). The basis is
// monomial by construction; Options.Basis is ignored.
func SPCGMon(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	return runSStep(a, m, b, opts, true)
}

// runSStep is the shared driver for SPCG (momentForm=false) and sPCGmon
// (momentForm=true).
func runSStep(a *sparse.CSR, m precond.Interface, b []float64, opts Options, momentForm bool) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	s := opts.S
	if momentForm {
		opts.Basis = 0 // monomial by construction
	}
	params, err := resolveBasis(a, c.m, &opts)
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	// State across outer iterations.
	r := make([]float64, n)
	u := make([]float64, n)
	scratch := make([]float64, n)
	S := vec.NewBlock(n, s+1)
	U := vec.NewBlock(n, s)
	P := vec.NewBlock(n, s)
	AP := vec.NewBlock(n, s)
	pNew := vec.NewBlock(n, s)  // double buffer: AddMul may not alias dst with x
	apNew := vec.NewBlock(n, s) //
	sb := vec.NewBlock(n, s)    // S·B scratch
	var wPrev *dense.Mat        // W⁽ᵏ⁻¹⁾ for the B⁽ᵏ⁾ system

	// B (change of basis): AU⁽ᵏ⁾ = S⁽ᵏ⁾·B, (s+1)×s.
	bMat := params.ChangeOfBasis(s + 1)

	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))

	var ck *checker
	maxOuter := (opts.MaxIterations + s - 1) / s
	haveHistory := false // P⁽ᵏ⁻¹⁾/AP⁽ᵏ⁻¹⁾ valid (false at k=0 and after restarts)
	bestVal := math.Inf(1)

	// Fault detection/recovery (opt-in). Only (x, r) need checkpointing: a
	// rollback drops the search-direction history exactly like a regression
	// restart, and the block loop rebuilds everything else from r.
	g := newGuard(c, opts, b)
	if g != nil {
		g.checkpoint(x, r, nil, 0)
	}
	// recoverState rolls back to the last checkpoint and restarts the block
	// sequence from it; false means recovery is off, unavailable or spent.
	recoverState := func() bool {
		if !g.restore(x, r, nil, nil) {
			return false
		}
		haveHistory = false
		bestVal = math.Inf(1)
		return true
	}

	for k := 0; k <= maxOuter; k++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		// u⁽ᵏ⁾ = M⁻¹r⁽ᵏ⁾ (needed for both the criterion and the MPK).
		c.applyM(u, r)

		// Convergence check at the block boundary (every s steps, paper §5.2).
		rho := c.localDot(r, u)
		if !finite(rho) || rho < 0 {
			if recoverState() {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at outer iteration %d", ErrBreakdown, rho, k)
			break
		}
		var critVal float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			critVal = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			critVal = math.Sqrt(c.localDot(r, r)) // fused into the Gram allreduce below
		case RecursiveResidualMNorm:
			critVal = math.Sqrt(rho) // free: rᵀu is part of the Gram
		}
		if ck == nil {
			ck = newChecker(opts, critVal, stats)
		}
		if ck.done(critVal) {
			stats.Converged = true
			break
		}
		if k == maxOuter || k*s >= opts.MaxIterations {
			break
		}
		// Detection probe at the block boundary (every DetectEvery outer
		// iterations): corruption rolls back, a clean probe may checkpoint.
		if k > 0 && g.due(k) {
			if g.corrupted(x, r, scratch) {
				if !recoverState() {
					stats.Breakdown = errRollbackBudget(g.maxRollbacks)
					break
				}
				continue
			}
			g.checkpoint(x, r, nil, 0)
		}
		// Regression restart: s-step methods can bounce back up after a
		// deep dip when the block basis degenerates near the attainable-
		// accuracy floor (see DESIGN.md). Dropping the search-direction
		// history restarts the block sequence from the current residual —
		// CG-rate convergence resumes as long as the target is above the
		// floor. Costs nothing in communication.
		if critVal < bestVal {
			bestVal = critVal
		} else if critVal > 4*bestVal {
			haveHistory = false
			bestVal = critVal
			stats.Restarts++
		}

		// Basis generation: S⁽ᵏ⁾ spans K_{s+1}(AM⁻¹, r), U⁽ᵏ⁾ = M⁻¹S(:,0:s−1).
		if err := mpk.Compute(mpkOp{c}, mpkPrec{c}, params, r, u, S, U); err != nil {
			if recoverState() {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: matrix powers kernel: %v", ErrBreakdown, err)
			break
		}

		// Scalar Work: one fused global reduction.
		var w, cMat *dense.Mat // W⁽ᵏ⁾ = P⁽ᵏ⁾ᵀAU⁽ᵏ⁾ ; C = P⁽ᵏ⁻¹⁾ᵀAU⁽ᵏ⁾
		var mVec []float64     // m⁽ᵏ⁾ = R⁽ᵏ⁾ᵀu⁽ᵏ⁾
		payload := 0
		useHist := haveHistory
		if momentForm {
			// sPCGmon: 2s moments + (substituted) fused Gram for C.
			mu := make([]float64, 2*s)
			for l := 0; l < s; l++ {
				mu[l] = c.localDot(r, U.Col(l))
			}
			for l := s; l < 2*s; l++ {
				mu[l] = c.localDot(S.Col(l-s+1), U.Col(s-1))
			}
			payload += 2 * s
			// Hankel fill: (UᵀAU)[i][j] = μ_{i+j+1}, m[j] = μ_j.
			uau := dense.NewMat(s, s)
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					uau.Set(i, j, mu[i+j+1])
				}
			}
			mVec = append([]float64(nil), mu[:s]...)
			if useHist {
				// C = P⁽ᵏ⁻¹⁾ᵀAU⁽ᵏ⁾ = (AP⁽ᵏ⁻¹⁾)ᵀU⁽ᵏ⁾ fused into the same
				// allreduce (documented substitution for the 1989 moment
				// recurrence; see DESIGN.md).
				cMat = dense.FromRowMajor(s, s, c.gramLocal(AP, U))
				payload += s * s
			}
			w = uau
		} else {
			// sPCG: G1 = U⁽ᵏ⁾ᵀS⁽ᵏ⁾ and (k>0) G2 = P⁽ᵏ⁻¹⁾ᵀS⁽ᵏ⁾, fused.
			g1 := dense.FromRowMajor(s, s+1, c.gramLocal(U, S))
			payload += s * (s + 1)
			var g2 *dense.Mat
			if useHist {
				g2 = dense.FromRowMajor(s, s+1, c.gramLocal(P, S))
				payload += s * (s + 1)
			}
			// m⁽ᵏ⁾ = R⁽ᵏ⁾ᵀu⁽ᵏ⁾ = first row of G1 (= uᵀS_j by symmetry of M⁻¹).
			mVec = make([]float64, s)
			for j := 0; j < s; j++ {
				mVec[j] = g1.At(0, j)
			}
			// UᵀAU = G1·B ; C = P⁽ᵏ⁻¹⁾ᵀAU = G2·B.
			w = dense.MatMul(g1, bMat)
			if useHist {
				cMat = dense.MatMul(g2, bMat)
			}
		}
		if opts.Criterion == RecursiveResidual2Norm {
			payload++ // the fused ‖r‖² value (rᵀu is already in the Gram/moments)
		}
		c.allreduce(payload)

		// B⁽ᵏ⁾ from A-orthogonality: W⁽ᵏ⁻¹⁾·B⁽ᵏ⁾ = −C⁽ᵏ⁾. A singular
		// W⁽ᵏ⁻¹⁾ means the s-step basis has degenerated — reported as a
		// breakdown, the condition behind the paper's Table 2 hyphens.
		// (A variant study with rank-revealing pseudo-inverse solves, a
		// fully expanded W recurrence, and an exact-Galerkin right-hand
		// side was performed during development; all were *less* robust
		// than this paper-faithful form, whose two-term coupling retains
		// more of CG's finite-precision self-correction. See DESIGN.md.)
		// Scalar Work phase span: the dense s×s factorizations and solves.
		// Error exits below drop the span (the run is ending anyway).
		tScalar := c.obs.Begin()
		var bk *dense.Mat
		if useHist {
			rhs := cMat.Clone()
			rhs.Scale(-1)
			f, ferr := dense.LUFactor(wPrev)
			if ferr != nil {
				if recoverState() {
					continue
				}
				stats.Breakdown = fmt.Errorf("%w: W⁽ᵏ⁻¹⁾ singular at outer iteration %d: %v", ErrBreakdown, k, ferr)
				break
			}
			if serr := f.SolveMat(rhs); serr != nil {
				if recoverState() {
					continue
				}
				stats.Breakdown = fmt.Errorf("%w: %v", ErrBreakdown, serr)
				break
			}
			bk = rhs
			// W⁽ᵏ⁾ = U⁽ᵏ⁾ᵀAU⁽ᵏ⁾ + B⁽ᵏ⁾ᵀ·C⁽ᵏ⁾ (derivation in DESIGN.md).
			w.AddMat(1, dense.MatMul(bk.T(), cMat))
		}
		w.Symmetrize()

		// a⁽ᵏ⁾ from W⁽ᵏ⁾·a⁽ᵏ⁾ = m⁽ᵏ⁾.
		aVec, aerr := dense.SolveSPD(w, mVec)
		if aerr != nil {
			if recoverState() {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: W⁽ᵏ⁾ system at outer iteration %d: %v", ErrBreakdown, k, aerr)
			break
		}
		if !finite(aVec...) {
			if recoverState() {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: non-finite a⁽ᵏ⁾ at outer iteration %d", ErrBreakdown, k)
			break
		}
		c.obs.End(obs.PhaseScalarWork, tScalar)

		// Block updates.
		if !useHist {
			P.CopyFrom(U)
			c.blockMul(AP, S, bMat.Data) // AP⁽⁰⁾ = S·B
		} else {
			c.blockAddMul(pNew, U, P, bk.Data) // P⁽ᵏ⁾ = U + P⁽ᵏ⁻¹⁾·B⁽ᵏ⁾
			P, pNew = pNew, P
			c.blockMul(sb, S, bMat.Data)
			c.blockAddMul(apNew, sb, AP, bk.Data) // AP⁽ᵏ⁾ = S·B + AP⁽ᵏ⁻¹⁾·B⁽ᵏ⁾
			AP, apNew = apNew, AP
		}
		c.blockMulVecAdd(x, P, aVec)  // x += P·a
		c.blockMulVecSub(r, AP, aVec) // r −= AP·a
		c.inj.CorruptVector(r)

		if opts.ResidualReplacement && shouldReplaceResidual(c, b, x, r, scratch) {
			stats.ResidualReplacements++
		}

		wPrev = w
		haveHistory = true
		stats.OuterIterations = k + 1
		stats.Iterations = (k + 1) * s
		if !finite(r[0]) {
			if recoverState() {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: residual diverged at outer iteration %d", ErrBreakdown, k)
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}

// shouldReplaceResidual implements the residual-replacement extension: when
// the recursive residual has drifted from the true residual by more than a
// √ε factor of its own size, replace it (Carson & Demmel 2014 use a finer
// bound; the √ε heuristic captures the mechanism). Charged: one SpMV + one
// allreduce per outer iteration when enabled.
func shouldReplaceResidual(c *ctx, b, x, r, scratch []float64) bool {
	c.spmv(scratch, x)
	vec.Sub(scratch, b, scratch) // true residual
	c.tr.VectorOp(float64(c.n), 24*float64(c.n))
	diff := 0.0
	norm := 0.0
	for i := range scratch {
		d := scratch[i] - r[i]
		diff += d * d
		norm += scratch[i] * scratch[i]
	}
	c.tr.ReduceLocal(4*float64(c.n), 32*float64(c.n))
	c.allreduce(2)
	if diff > 1e-16*norm && norm > 0 {
		copy(r, scratch)
		return true
	}
	return false
}
