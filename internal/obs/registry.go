package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. L("method", "pcg").
type Label struct {
	Key   string
	Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind is a metric family's type in the Prometheus sense.
type Kind uint8

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry is a typed metric registry: counters, gauges and histograms,
// optionally labeled, exposable as Prometheus text (WritePrometheus). All
// constructors are get-or-create and safe for concurrent use; registering the
// same name with a different kind panics (a programming error, caught by the
// first scrape in tests).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every labeled series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series // keyed by rendered label signature
	order  []string           // signatures in registration order
}

// series is one labeled instance of a family.
type series struct {
	labels []Label

	// counter/gauge value; counters hold integers in bits' float encoding.
	bits atomic.Uint64
	// read, when non-nil, supplies the value at scrape time (CounterFunc /
	// GaugeFunc).
	read func() float64

	// histogram state (nil for counter/gauge).
	hist *histState
}

type histState struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) get(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	sig := labelSignature(labels)
	s := f.series[sig]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter series for name and labels, creating it on
// first use. Counters are monotone; use Add/Inc.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{r.get(name, help, KindCounter, labels)}
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// (for pre-existing atomic counters like the pool's kernel totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(name, help, KindCounter, labels).read = fn
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{r.get(name, help, KindGauge, labels)}
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(name, help, KindGauge, labels).read = fn
}

// Histogram returns the histogram series for name and labels, creating it
// with the given bucket upper bounds (ascending, +Inf implied) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.get(name, help, KindHistogram, labels)
	r.mu.Lock()
	if s.hist == nil {
		s.hist = &histState{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	r.mu.Unlock()
	return &Histogram{s}
}

// Names returns the sorted registered family names (the docs-coverage check
// walks this).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotone integer metric.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0).
func (c *Counter) Add(delta int64) {
	for {
		old := c.s.bits.Load()
		v := math.Float64frombits(old) + float64(delta)
		if c.s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return int64(math.Float64frombits(c.s.bits.Load())) }

// Gauge is a settable instantaneous value.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value (running
// maxima like the largest coalesced batch).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.s.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram is a fixed-bucket distribution metric.
type Histogram struct{ s *series }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	st := h.s.hist
	i := sort.SearchFloat64s(st.bounds, v)
	st.counts[i].Add(1)
	st.count.Add(1)
	for {
		old := st.sumBits.Load()
		if st.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := st.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if st.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistSnapshot is a consistent-enough point-in-time histogram read for JSON
// reporting (scrapes under concurrent writes may be off by in-flight
// samples, which is fine for dashboards).
type HistSnapshot struct {
	Count int64
	Sum   float64
	Max   float64
	// Counts holds the per-bucket (non-cumulative) sample counts; the last
	// entry is the overflow (+Inf) bucket.
	Counts []int64
	// Bounds are the bucket upper bounds the histogram was created with.
	Bounds []float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	st := h.s.hist
	snap := HistSnapshot{
		Count:  st.count.Load(),
		Sum:    math.Float64frombits(st.sumBits.Load()),
		Max:    math.Float64frombits(st.maxBits.Load()),
		Bounds: st.bounds,
		Counts: make([]int64, len(st.counts)),
	}
	for i := range st.counts {
		snap.Counts[i] = st.counts[i].Load()
	}
	return snap
}

// Quantile estimates the p-quantile (0 < p < 1) by linear interpolation
// inside the winning bucket, using the observed maximum as the overflow
// bucket's upper edge.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(p * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum int64
	for i, c := range s.Counts {
		if cum+c > target {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.5
			if c > 0 {
				frac = (float64(target-cum) + 0.5) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return s.Max
}

// labelSignature renders labels deterministically (sorted by key) for series
// identity and exposition.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
