package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"spcg/internal/basis"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/suite"
	"spcg/internal/tune"
	"spcg/internal/vec"
)

// This file benchmarks the autotuning subsystem end to end: for each suite
// matrix it runs the tuner (seed + successive-halving trials), then measures
// full solves for the tuned winner ("auto") and for every static candidate
// the seeder enumerated. The committed BENCH_autotune.json documents the
// acceptance properties:
//
//  1. auto is within 10% of the best static configuration (the tuner's
//     capped probes rank like full solves), and
//  2. auto is strictly faster than the worst converging static configuration
//     (picking blind has a real cost the tuner avoids),
//
// plus the hard invariant the CI smoke asserts: the tuner never selects a
// configuration that broke down in trials.

// AutotuneConfig parameterizes the benchmark.
type AutotuneConfig struct {
	// Matrices are suite names (default thermomech_TC — easy, PCG converges
	// in tens of iterations — and shipsec8 — ill-conditioned, where monomial
	// bases at large s break down).
	Matrices []string
	// Scale divides paper matrix sizes (default 100: ~1000-row stand-ins).
	Scale int
	// Tune configures the tuner itself (probe caps, rounds, candidate grid).
	Tune tune.Config
	// Reps is full-solve repetitions per configuration; min is reported
	// (default 3).
	Reps int
	// MaxIterations caps each full solve (default 5000).
	MaxIterations int
	// Tol is the full-solve relative residual target (default 1e-8).
	Tol float64
}

func (c AutotuneConfig) withDefaults() AutotuneConfig {
	if len(c.Matrices) == 0 {
		c.Matrices = []string{"thermomech_TC", "shipsec8"}
	}
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 5000
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	return c
}

// AutotuneSolve is one full (uncapped-tolerance) solve measurement.
type AutotuneSolve struct {
	Candidate  tune.Candidate `json:"candidate"`
	Converged  bool           `json:"converged"`
	Iterations int            `json:"iterations"`
	// ElapsedMS is the minimum over Reps runs.
	ElapsedMS float64 `json:"elapsed_ms"`
	Breakdown string  `json:"breakdown,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// AutotuneRow is the benchmark for one matrix.
type AutotuneRow struct {
	Matrix string  `json:"matrix"`
	N      int     `json:"n"`
	NNZ    int     `json:"nnz"`
	Cond   float64 `json:"cond_estimate"`
	// Winner is the configuration the tuner selected.
	Winner tune.Candidate `json:"winner"`
	// TuneMS is the wall time of the trial schedule (the tuner's overhead).
	TuneMS float64 `json:"tune_ms"`
	Trials int     `json:"trials"`
	Pruned int     `json:"pruned"`
	// Solves holds the full-solve measurement for every static candidate;
	// the winner's entry doubles as the "auto" measurement.
	Solves []AutotuneSolve `json:"solves"`
	// AutoMS is the winner's full solve; Best/WorstStaticMS range over the
	// converged static candidates (the winner included — auto cannot beat
	// the best static, it can only match it).
	AutoMS        float64 `json:"auto_ms"`
	BestStaticMS  float64 `json:"best_static_ms"`
	WorstStaticMS float64 `json:"worst_static_ms"`
	BestStatic    string  `json:"best_static"`
	WorstStatic   string  `json:"worst_static"`
	// AutoVsBest = AutoMS/BestStaticMS (1.0 = tuner found the optimum);
	// AutoVsWorst = AutoMS/WorstStaticMS (how much picking blind can cost).
	AutoVsBest  float64 `json:"auto_vs_best"`
	AutoVsWorst float64 `json:"auto_vs_worst"`
}

// AutotuneSummary aggregates the acceptance checks across matrices.
type AutotuneSummary struct {
	AutoWithin10PctOfBest bool `json:"auto_within_10pct_of_best"`
	AutoBeatsWorstStatic  bool `json:"auto_beats_worst_static"`
	// NoBrokenSelections is the hard invariant: no ranked candidate on any
	// matrix had a breakdown trial.
	NoBrokenSelections bool `json:"no_broken_selections"`
}

// AutotuneResult is the BENCH_autotune.json document.
type AutotuneResult struct {
	Scale   int             `json:"scale"`
	Reps    int             `json:"reps"`
	Rows    []AutotuneRow   `json:"rows"`
	Summary AutotuneSummary `json:"summary"`
}

// RunAutotune executes the benchmark.
func RunAutotune(cfg AutotuneConfig, progress io.Writer) (*AutotuneResult, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	res := &AutotuneResult{Scale: cfg.Scale, Reps: cfg.Reps}
	sum := AutotuneSummary{AutoWithin10PctOfBest: true, AutoBeatsWorstStatic: true, NoBrokenSelections: true}

	for _, name := range cfg.Matrices {
		p, ok := suite.ByName(name)
		if !ok {
			return nil, fmt.Errorf("autotune: unknown suite matrix %q", name)
		}
		a := p.Build(cfg.Scale)
		plan, err := tune.Seed(a, cfg.Tune)
		if err != nil {
			return nil, fmt.Errorf("autotune: seed %s: %w", name, err)
		}
		t0 := time.Now()
		d, err := tune.Run(plan, &tune.DirectRunner{A: a}, cfg.Tune)
		if err != nil {
			return nil, fmt.Errorf("autotune: tune %s: %w", name, err)
		}
		row := AutotuneRow{
			Matrix: name, N: a.Dim(), NNZ: a.NNZ(), Cond: plan.Cond,
			Winner: d.Winner, TuneMS: float64(time.Since(t0).Microseconds()) / 1000,
			Trials: len(d.Trials), Pruned: len(plan.Pruned),
		}
		logf("%s: n=%d κ≈%.3g, tuned in %.0fms (%d trials) -> %s",
			name, row.N, row.Cond, row.TuneMS, row.Trials, d.Winner)

		// The never-select-broken invariant, re-checked from the trial log.
		broken := map[tune.Candidate]bool{}
		for _, tr := range d.Trials {
			if tr.Outcome.Breakdown != "" {
				broken[tr.Candidate] = true
			}
		}
		for _, rc := range d.Ranked {
			if broken[rc.Candidate] {
				sum.NoBrokenSelections = false
			}
		}

		// Full solves: every static candidate the seeder enumerated (the
		// winner is one of them — its row is the "auto" measurement).
		for _, c := range plan.Candidates {
			sv := fullSolve(a, c, cfg)
			row.Solves = append(row.Solves, sv)
			status := fmt.Sprintf("%d iters, %.2fms", sv.Iterations, sv.ElapsedMS)
			if !sv.Converged {
				status = "did not converge"
				if sv.Breakdown != "" {
					status = "breakdown: " + sv.Breakdown
				}
			}
			logf("  %-32s %s", sv.Candidate, status)
			if sv.Candidate == d.Winner {
				row.AutoMS = sv.ElapsedMS
				if !sv.Converged {
					sum.NoBrokenSelections = false // winner must actually solve
				}
			}
			if !sv.Converged {
				continue
			}
			if row.BestStatic == "" || sv.ElapsedMS < row.BestStaticMS {
				row.BestStatic, row.BestStaticMS = sv.Candidate.String(), sv.ElapsedMS
			}
			if row.WorstStatic == "" || sv.ElapsedMS > row.WorstStaticMS {
				row.WorstStatic, row.WorstStaticMS = sv.Candidate.String(), sv.ElapsedMS
			}
		}
		if row.BestStaticMS > 0 {
			row.AutoVsBest = row.AutoMS / row.BestStaticMS
		}
		if row.WorstStaticMS > 0 {
			row.AutoVsWorst = row.AutoMS / row.WorstStaticMS
		}
		if row.AutoVsBest > 1.10 {
			sum.AutoWithin10PctOfBest = false
		}
		// "Strictly better than the worst static" only constrains matrices
		// where the statics actually spread; equality means every converging
		// config ties, and there is nothing for a tuner to win.
		if row.WorstStaticMS > row.BestStaticMS && row.AutoMS >= row.WorstStaticMS {
			sum.AutoBeatsWorstStatic = false
		}
		res.Rows = append(res.Rows, row)
	}
	res.Summary = sum
	return res, nil
}

// fullSolve measures one configuration to convergence (min over Reps).
func fullSolve(a *sparse.CSR, c tune.Candidate, cfg AutotuneConfig) AutotuneSolve {
	sv := AutotuneSolve{Candidate: c}
	run, ok := solver.ByName(c.Method)
	if !ok {
		sv.Error = fmt.Sprintf("unknown method %q", c.Method)
		return sv
	}
	spec, err := precond.Parse(c.Precond)
	if err != nil {
		sv.Error = err.Error()
		return sv
	}
	m, err := spec.Build(a)
	if err != nil {
		sv.Error = err.Error()
		return sv
	}
	opts := solver.Options{S: c.S, Tol: cfg.Tol, MaxIterations: cfg.MaxIterations, Basis: basis.Chebyshev}
	if c.Basis != "" {
		bt, err := basis.ParseType(c.Basis)
		if err != nil {
			sv.Error = err.Error()
			return sv
		}
		opts.Basis = bt
	}
	if solver.NeedsSpectrum(c.Method) && opts.Basis != basis.Monomial {
		iters := 20
		if 2*c.S > iters {
			iters = 2 * c.S
		}
		est, err := eig.RitzFromPCG(a, m.Apply, eig.Options{Iterations: iters})
		if err != nil {
			sv.Error = err.Error()
			return sv
		}
		opts.Spectrum = est
	}
	b := make([]float64, a.Dim())
	vec.Fill(b, 1)

	best := math.MaxFloat64
	for r := 0; r < cfg.Reps; r++ {
		t0 := time.Now()
		_, stats, err := run(a, m, b, opts)
		elapsed := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			o := tune.ProbeOutcome(stats, err, time.Since(t0))
			sv.Breakdown, sv.Error = o.Breakdown, o.Err
			return sv
		}
		if stats.Breakdown != nil {
			sv.Breakdown = stats.Breakdown.Error()
			return sv
		}
		if !stats.Converged {
			sv.Iterations = stats.Iterations
			return sv
		}
		if elapsed < best {
			best, sv.Iterations = elapsed, stats.Iterations
		}
	}
	sv.Converged, sv.ElapsedMS = true, best
	return sv
}

// ValidateAutotune enforces the CI smoke invariants: the tuner must never
// select (or rank) a configuration that broke down, and every winner must
// solve its matrix to convergence.
func ValidateAutotune(res *AutotuneResult) error {
	if !res.Summary.NoBrokenSelections {
		return fmt.Errorf("autotune: a broken-down configuration was selected or ranked")
	}
	for _, row := range res.Rows {
		if row.AutoMS == 0 {
			return fmt.Errorf("autotune: %s: winner %s has no converged full solve", row.Matrix, row.Winner)
		}
	}
	return nil
}

// RenderAutotune prints the benchmark with the acceptance summary.
func RenderAutotune(w io.Writer, res *AutotuneResult) {
	fmt.Fprintf(w, "Autotuning benchmark (scale %d, min of %d full-solve reps)\n", res.Scale, res.Reps)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "\n%s  n=%d nnz=%d κ≈%.3g  (tuned in %.0fms over %d trials, %d pruned)\n",
			row.Matrix, row.N, row.NNZ, row.Cond, row.TuneMS, row.Trials, row.Pruned)
		fmt.Fprintf(w, "  %-34s %10s %8s\n", "configuration", "iters", "time")
		for _, sv := range row.Solves {
			mark := " "
			if sv.Candidate == row.Winner {
				mark = "*"
			}
			if !sv.Converged {
				why := "did not converge"
				if sv.Breakdown != "" {
					why = "breakdown: " + sv.Breakdown
				} else if sv.Error != "" {
					why = sv.Error
				}
				fmt.Fprintf(w, " %s%-34s %s\n", mark, sv.Candidate, why)
				continue
			}
			fmt.Fprintf(w, " %s%-34s %10d %7.2fms\n", mark, sv.Candidate, sv.Iterations, sv.ElapsedMS)
		}
		fmt.Fprintf(w, "  auto %.2fms vs best static %.2fms (%s, ratio %.2f) vs worst static %.2fms (%s, ratio %.2f)\n",
			row.AutoMS, row.BestStaticMS, row.BestStatic, row.AutoVsBest,
			row.WorstStaticMS, row.WorstStatic, row.AutoVsWorst)
	}
	fmt.Fprintf(w, "\nauto within 10%% of best static: %v\n", res.Summary.AutoWithin10PctOfBest)
	fmt.Fprintf(w, "auto beats worst static:        %v\n", res.Summary.AutoBeatsWorstStatic)
	fmt.Fprintf(w, "no broken config selected:      %v\n", res.Summary.NoBrokenSelections)
}
