package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsSafe: every method must no-op on a nil *Tracer — the
// pay-for-use contract the solver hot path relies on.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	start := tr.Begin()
	if !start.IsZero() {
		t.Fatalf("nil Begin returned non-zero time %v", start)
	}
	tr.End(PhaseSpMV, start)
	tr.EndN(PhaseGram, start, 7)
	tr.Count(PhaseCollective, 3)
	tr.Reset()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil Spans = %v, want nil", got)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("nil Dropped = %d", d)
	}
	b := tr.Breakdown()
	if len(b.Phases) != 0 || b.Collectives != 0 {
		t.Fatalf("nil Breakdown = %+v, want zero", b)
	}
}

// TestRingWraparound: with capacity c and c+k emissions, the ring retains the
// most recent c spans in order, reports k drops, and the per-phase aggregates
// still count every span.
func TestRingWraparound(t *testing.T) {
	const capacity, total = 8, 21
	tr := New(capacity)
	for i := 0; i < total; i++ {
		tr.Count(PhaseCollective, int64(i))
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	// Payload encodes the emission index; the retained window is the tail.
	for i, sp := range spans {
		want := int64(total - capacity + i)
		if sp.Payload != want {
			t.Fatalf("span %d payload = %d, want %d", i, sp.Payload, want)
		}
	}
	if d := tr.Dropped(); d != total-capacity {
		t.Fatalf("Dropped = %d, want %d", d, total-capacity)
	}
	b := tr.Breakdown()
	if b.Collectives != total {
		t.Fatalf("aggregate collective count = %d, want %d (drops must not affect aggregates)", b.Collectives, total)
	}
	wantPayload := int64(total * (total - 1) / 2)
	if b.CollectiveValues != wantPayload {
		t.Fatalf("aggregate payload = %d, want %d", b.CollectiveValues, wantPayload)
	}
	if b.SpansDropped != total-capacity || b.SpansRetained != capacity {
		t.Fatalf("breakdown ring state = (%d retained, %d dropped)", b.SpansRetained, b.SpansDropped)
	}
}

// TestConcurrentEmit hammers one tracer from many goroutines (run under
// -race in CI) and checks the aggregates add up exactly.
func TestConcurrentEmit(t *testing.T) {
	const goroutines, perG = 8, 500
	tr := New(64) // small ring: force wraparound under contention
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				start := tr.Begin()
				tr.End(PhaseSpMV, start)
				tr.Count(PhaseCollective, 2)
			}
		}()
	}
	wg.Wait()
	b := tr.Breakdown()
	var spmv int64
	for _, st := range b.Phases {
		if st.Phase == "spmv" {
			spmv = st.Count
		}
	}
	if spmv != goroutines*perG {
		t.Fatalf("spmv count = %d, want %d", spmv, goroutines*perG)
	}
	if b.Collectives != goroutines*perG || b.CollectiveValues != 2*goroutines*perG {
		t.Fatalf("collectives = %d (%d values), want %d (%d)",
			b.Collectives, b.CollectiveValues, goroutines*perG, 2*goroutines*perG)
	}
}

// TestSpanDurations: End records a duration ≥ the slept time, and Breakdown
// sums it into the phase and total.
func TestSpanDurations(t *testing.T) {
	tr := New(16)
	start := tr.Begin()
	time.Sleep(2 * time.Millisecond)
	tr.End(PhasePrec, start)
	b := tr.Breakdown()
	if len(b.Phases) != 1 || b.Phases[0].Phase != "prec" {
		t.Fatalf("phases = %+v", b.Phases)
	}
	if b.Phases[0].Seconds < 0.002 {
		t.Fatalf("prec seconds = %v, want >= 0.002", b.Phases[0].Seconds)
	}
	if b.TotalSeconds != b.Phases[0].Seconds {
		t.Fatalf("total %v != phase sum %v", b.TotalSeconds, b.Phases[0].Seconds)
	}
}

// TestWriteJSON: the export round-trips as JSON with named phases.
func TestWriteJSON(t *testing.T) {
	tr := New(4)
	tr.End(PhaseGram, tr.Begin())
	tr.Count(PhaseCollective, 5)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Breakdown Breakdown `json:"breakdown"`
		Spans     []struct {
			Phase string `json:"phase"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Spans) != 2 || doc.Spans[0].Phase != "gram" || doc.Spans[1].Phase != "collective" {
		t.Fatalf("spans = %+v", doc.Spans)
	}
	if doc.Breakdown.Collectives != 1 || doc.Breakdown.CollectiveValues != 5 {
		t.Fatalf("breakdown = %+v", doc.Breakdown)
	}
}

// TestRenderBreakdown sanity-checks the table renderer's shape.
func TestRenderBreakdown(t *testing.T) {
	tr := New(8)
	tr.End(PhaseSpMV, tr.Begin())
	tr.Count(PhaseCollective, 4)
	var buf bytes.Buffer
	tr.Breakdown().Render(&buf)
	out := buf.String()
	for _, want := range []string{"phase", "spmv", "collective", "total"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestPhaseNames: every defined phase has a distinct stable name.
func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("phase %d has bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
	if Phase(200).String() != "unknown" {
		t.Fatalf("out-of-range phase name = %q", Phase(200).String())
	}
}

// TestReset clears ring, drops and aggregates.
func TestReset(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Count(PhaseHalo, 1)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 || len(tr.Breakdown().Phases) != 0 {
		t.Fatalf("Reset left state: spans=%d dropped=%d phases=%+v",
			len(tr.Spans()), tr.Dropped(), tr.Breakdown().Phases)
	}
}
