// Command spcglint runs the repo's first-party invariant analyzers
// (internal/lint) over the module and prints positioned diagnostics.
//
//	go run ./cmd/spcglint ./...          # whole module
//	go run ./cmd/spcglint ./internal/vec # one subtree
//	go run ./cmd/spcglint -disable floatcmp ./...
//	go run ./cmd/spcglint -list
//
// Exit status: 0 clean, 1 diagnostics (or type-check problems), 2 usage or
// load error. See docs/LINT.md for the invariant each analyzer enforces and
// the //spcglint:ignore suppression mechanism.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spcg/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("spcglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: spcglint [flags] [packages]\n\nRuns the first-party invariant analyzers over the module.\nPackage arguments are ./... (default), directory paths or import-path prefixes.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := filterAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "spcglint:", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "spcglint:", err)
		return 2
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "spcglint:", err)
		return 2
	}

	keep, err := packageFilter(m, root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "spcglint:", err)
		return 2
	}

	bad := 0
	for _, pkg := range m.Packages {
		if !keep(pkg) {
			continue
		}
		for _, terr := range pkg.TypeErrors {
			bad++
			fmt.Fprintf(stdout, "%v [typecheck]\n", terr)
		}
	}

	for _, d := range lint.Run(m, analyzers) {
		rel, rerr := filepath.Rel(root, d.Pos.Filename)
		if rerr != nil {
			rel = d.Pos.Filename
		}
		if !keepFile(m, keep, d.Pos.Filename) {
			continue
		}
		bad++
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "spcglint: %d problem(s)\n", bad)
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterAnalyzers applies -enable/-disable.
func filterAnalyzers(all []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// packageFilter turns the positional arguments into a unit predicate.
// Accepted forms: "./..." (everything), "./dir" or "./dir/..." (subtree by
// directory), and import-path prefixes like "spcg/internal/vec".
func packageFilter(m *lint.Module, root string, args []string) (func(*lint.Package) bool, error) {
	if len(args) == 0 {
		return func(*lint.Package) bool { return true }, nil
	}
	type pred struct {
		dir  string // relative directory prefix ("" = unused)
		path string // import-path prefix ("" = unused)
	}
	var preds []pred
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			return func(*lint.Package) bool { return true }, nil
		}
		if strings.HasPrefix(arg, ".") || strings.HasPrefix(arg, "/") {
			dir := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			abs := dir
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(cwd, dir)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("package argument %q is outside the module", arg)
			}
			preds = append(preds, pred{dir: rel})
			continue
		}
		preds = append(preds, pred{path: strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")})
	}
	sep := string(filepath.Separator)
	return func(p *lint.Package) bool {
		for _, pr := range preds {
			switch {
			case pr.dir != "":
				if pr.dir == "." || p.Dir == pr.dir || strings.HasPrefix(p.Dir, pr.dir+sep) {
					return true
				}
			case pr.path != "":
				if p.Path == pr.path || strings.HasPrefix(p.Path, pr.path+"/") ||
					p.Path == pr.path+"_test" {
					return true
				}
			}
		}
		return false
	}, nil
}

// keepFile reports whether a diagnostic's file belongs to a kept unit.
func keepFile(m *lint.Module, keep func(*lint.Package) bool, filename string) bool {
	for _, pkg := range m.Packages {
		if !keep(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			if pkg.Filename(f.Pos()) == filename {
				return true
			}
		}
	}
	return false
}
