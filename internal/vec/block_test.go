package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randBlock(rng *rand.Rand, n, s int) *Block {
	b := NewBlock(n, s)
	for _, c := range b.Cols {
		for i := range c {
			c[i] = rng.NormFloat64()
		}
	}
	return b
}

// naive dense reference: n×s matrix as [][]float64 rows.
func blockToRows(b *Block) [][]float64 {
	rows := make([][]float64, b.N)
	for i := range rows {
		rows[i] = make([]float64, b.S())
		for j := 0; j < b.S(); j++ {
			rows[i][j] = b.Cols[j][i]
		}
	}
	return rows
}

func TestNewBlockContiguous(t *testing.T) {
	b := NewBlock(4, 3)
	if b.S() != 3 || b.N != 4 {
		t.Fatalf("shape = %d×%d", b.N, b.S())
	}
	b.Col(1)[2] = 5
	if b.Cols[1][2] != 5 {
		t.Fatal("Col does not view storage")
	}
	// Appending to a column must not spill into its neighbour (capacity capped).
	c0 := b.Col(0)
	c0 = append(c0, 99)
	if b.Cols[1][0] == 99 {
		t.Fatal("column capacity not capped; append corrupted neighbour column")
	}
	_ = c0
}

func TestBlockZeroShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlock(-1, 2)
}

func TestBlockMulVec(t *testing.T) {
	b := NewBlock(2, 2)
	// X = [1 3; 2 4]
	b.Cols[0][0], b.Cols[0][1] = 1, 2
	b.Cols[1][0], b.Cols[1][1] = 3, 4
	dst := make([]float64, 2)
	b.MulVec(dst, []float64{1, 1})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("MulVec = %v", dst)
	}
	b.MulVecAdd(dst, []float64{1, 0})
	if dst[0] != 5 || dst[1] != 8 {
		t.Fatalf("MulVecAdd = %v", dst)
	}
	b.MulVecSub(dst, []float64{0, 1})
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("MulVecSub = %v", dst)
	}
}

func TestGramAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randBlock(rng, 50, 3)
	y := randBlock(rng, 50, 4)
	g := Gram(x, y)
	xr, yr := blockToRows(x), blockToRows(y)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			var want float64
			for r := 0; r < 50; r++ {
				want += xr[r][i] * yr[r][j]
			}
			if !almostEq(g[i*4+j], want, 1e-10) {
				t.Fatalf("Gram[%d,%d] = %v, want %v", i, j, g[i*4+j], want)
			}
		}
	}
}

func TestGramSymmetryOnSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randBlock(rng, 64, 5)
	g := Gram(x, x)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if g[i*5+j] != g[j*5+i] {
				t.Fatalf("Gram(x,x) not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGramVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randBlock(rng, 30, 4)
	v := randVec(rng, 30)
	g := GramVec(x, v)
	for i := 0; i < 4; i++ {
		if !almostEq(g[i], Dot(x.Col(i), v), 1e-12) {
			t.Fatalf("GramVec[%d] mismatch", i)
		}
	}
}

func TestAddMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, sx, sd := 40, 3, 2
	x := randBlock(rng, n, sx)
	y := randBlock(rng, n, sd)
	c := make([]float64, sx*sd)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	dst := NewBlock(n, sd)
	AddMul(dst, y, x, c)
	for j := 0; j < sd; j++ {
		for r := 0; r < n; r++ {
			want := y.Cols[j][r]
			for i := 0; i < sx; i++ {
				want += x.Cols[i][r] * c[i*sd+j]
			}
			if !almostEq(dst.Cols[j][r], want, 1e-10) {
				t.Fatalf("AddMul[%d][%d] = %v, want %v", j, r, dst.Cols[j][r], want)
			}
		}
	}
	// In-place dst == y must give the same result.
	y2 := y.Clone()
	AddMul(y2, y2, x, c)
	for j := 0; j < sd; j++ {
		for r := 0; r < n; r++ {
			if !almostEq(y2.Cols[j][r], dst.Cols[j][r], 1e-10) {
				t.Fatalf("in-place AddMul differs at [%d][%d]", j, r)
			}
		}
	}
	// Parallel variant must match. The fused kernel groups columns four at a
	// time, so its (fixed, deterministic) summation association differs from
	// the sequential per-column Axpy sweep — compare to tolerance, not bits.
	dst2 := NewBlock(n, sd)
	ParAddMul(dst2, y, x, c)
	for j := 0; j < sd; j++ {
		for r := 0; r < n; r++ {
			if !almostEq(dst2.Cols[j][r], dst.Cols[j][r], 1e-12) {
				t.Fatalf("ParAddMul differs at [%d][%d]", j, r)
			}
		}
	}
}

func TestMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randBlock(rng, 20, 3)
	c := []float64{1, 0, 0, 1, 1, 1} // 3×2
	dst := NewBlock(20, 2)
	Mul(dst, x, c)
	zero := NewBlock(20, 2)
	want := NewBlock(20, 2)
	AddMul(want, zero, x, c)
	for j := 0; j < 2; j++ {
		for r := 0; r < 20; r++ {
			if dst.Cols[j][r] != want.Cols[j][r] {
				t.Fatal("Mul != AddMul with zero Y")
			}
		}
	}
}

func TestBlockViewClone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := randBlock(rng, 10, 5)
	v := b.View(1, 4)
	if v.S() != 3 {
		t.Fatalf("View S = %d", v.S())
	}
	v.Cols[0][0] = 42
	if b.Cols[1][0] != 42 {
		t.Fatal("View does not share storage")
	}
	c := b.Clone()
	c.Cols[0][0] = -1
	if b.Cols[0][0] == -1 {
		t.Fatal("Clone shares storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad View range")
		}
	}()
	b.View(3, 7)
}

func TestBlockCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlock(3, 2).CopyFrom(NewBlock(3, 3))
}

// Property: Gram(x,y) via MulVec consistency — (XᵀY)c == Xᵀ(Yc).
func TestGramMulVecConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(50)
		sx := 1 + rng.Intn(4)
		sy := 1 + rng.Intn(4)
		x, y := randBlock(rng, n, sx), randBlock(rng, n, sy)
		c := randVec(rng, sy)
		g := Gram(x, y)
		// lhs = (XᵀY)·c
		lhs := make([]float64, sx)
		for i := 0; i < sx; i++ {
			for j := 0; j < sy; j++ {
				lhs[i] += g[i*sy+j] * c[j]
			}
		}
		// rhs = Xᵀ·(Y·c)
		yc := make([]float64, n)
		y.MulVec(yc, c)
		rhs := GramVec(x, yc)
		for i := 0; i < sx; i++ {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9*(1+math.Abs(lhs[i])) {
				t.Fatalf("trial %d: associativity violated at %d: %v vs %v", trial, i, lhs[i], rhs[i])
			}
		}
	}
}

func TestBlockZero(t *testing.T) {
	b := randBlock(rand.New(rand.NewSource(99)), 8, 3)
	b.Zero()
	for _, c := range b.Cols {
		for _, v := range c {
			if v != 0 {
				t.Fatal("Zero left nonzero entries")
			}
		}
	}
}

func TestBlockShapePanics(t *testing.T) {
	b := NewBlock(4, 2)
	cases := []func(){
		func() { b.MulVec(make([]float64, 4), make([]float64, 3)) },
		func() { b.MulVec(make([]float64, 3), make([]float64, 2)) },
		func() { b.MulVecAdd(make([]float64, 4), make([]float64, 3)) },
		func() { b.MulVecSub(make([]float64, 4), make([]float64, 3)) },
		func() { Gram(NewBlock(4, 2), NewBlock(5, 2)) },
		func() { AddMul(NewBlock(4, 2), NewBlock(4, 3), b, make([]float64, 4)) },
		func() { Mul(NewBlock(4, 2), b, make([]float64, 3)) },
		func() { ParAddMul(NewBlock(4, 2), NewBlock(4, 3), b, make([]float64, 4)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestParDotManyWorkers(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(100))
	n := parallelThreshold * 4
	a, b := randVec(rng, n), randVec(rng, n)
	want := Dot(a, b)
	// Deterministic across repeated calls with a fixed worker count.
	first := ParDot(a, b)
	for i := 0; i < 5; i++ {
		if got := ParDot(a, b); got != first {
			t.Fatal("ParDot nondeterministic for fixed worker count")
		}
	}
	if math.Abs(first-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("ParDot = %v, want %v", first, want)
	}
}

func TestGramF32MatchesGramLoosely(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	x := randBlock(rng, 500, 3)
	y := randBlock(rng, 500, 4)
	g64 := Gram(x, y)
	g32 := GramF32(x, y)
	for i := range g64 {
		// Single-precision accumulation: relative agreement ~1e-5 at n=500.
		if math.Abs(g64[i]-g32[i]) > 1e-4*(1+math.Abs(g64[i])) {
			t.Fatalf("entry %d: f32 %v vs f64 %v", i, g32[i], g64[i])
		}
		if g64[i] == g32[i] && g64[i] != 0 {
			continue // occasionally exact; fine
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row mismatch")
		}
	}()
	GramF32(NewBlock(3, 1), NewBlock(4, 1))
}

func TestParallelKernelsWithForcedWorkers(t *testing.T) {
	// GOMAXPROCS may be 1 in CI; force multiple workers so the fan-out paths
	// execute.
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(201))
	n := parallelThreshold * 2
	x, y := randVec(rng, n), randVec(rng, n)
	y2 := append([]float64(nil), y...)
	ParAxpy(0.25, x, y)
	Axpy(0.25, x, y2)
	for i := range y {
		if y[i] != y2[i] {
			t.Fatal("forced-worker ParAxpy mismatch")
		}
	}
	a := randBlock(rng, n, 2)
	bBlk := randBlock(rng, n, 2)
	c := []float64{0.5, -1, 2, 0.25}
	d1 := NewBlock(n, 2)
	d2 := NewBlock(n, 2)
	ParAddMul(d1, bBlk, a, c)
	AddMul(d2, bBlk, a, c)
	for j := 0; j < 2; j++ {
		for i := 0; i < n; i++ {
			if d1.Cols[j][i] != d2.Cols[j][i] {
				t.Fatal("forced-worker ParAddMul mismatch")
			}
		}
	}
}
