package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"spcg/internal/tune"
)

// illMatrix is the strongly anisotropic operator the chaos harness already
// uses as a guaranteed monomial-at-large-s breakdown case: κ is large enough
// that fragile bases lose rank quickly.
const illMatrix = "aniso2d:24:0.001"

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestAutoEndToEnd is the acceptance scenario: on an ill-conditioned matrix
// a forced tuning run must reject monomial at large s (statically pruned or
// eliminated in trials), serve method:"auto" from the stored decision with a
// measured solve time no worse than the static PCG baseline, and the
// decision must survive a TuneStore reopen in a fresh server.
func TestAutoEndToEnd(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "tune.json")
	cfg := Config{
		Workers:        2,
		Scale:          1,
		TunePath:       storePath,
		TuneProbeIters: 30,
		TuneRounds:     2,
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())

	// Force a synchronous tuning run.
	code, body := postJSON(t, ts.URL+"/tune", map[string]string{"matrix": illMatrix})
	if code != http.StatusOK {
		t.Fatalf("POST /tune: HTTP %d: %s", code, body)
	}
	var d tune.Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Winner.Method == "" || len(d.Ranked) == 0 || d.Source != "tuned" {
		t.Fatalf("malformed decision: %+v", d)
	}
	if d.Winner.Basis == "monomial" && d.Winner.S > 4 {
		t.Errorf("tuner selected fragile monomial config on ill-conditioned operator: %v (κ≈%.3g)", d.Winner, d.Cond)
	}
	// The never-select-broken-config invariant: any candidate with a
	// breakdown trial must be absent from the ranked list.
	for _, tr := range d.Trials {
		if tr.Outcome.Breakdown == "" {
			continue
		}
		for _, rc := range d.Ranked {
			if rc.Candidate == tr.Candidate {
				t.Errorf("candidate %v broke down in trials but is ranked", tr.Candidate)
			}
		}
	}

	// Warm-path auto solve: resolved from the store, tuned config reported.
	solveMin := func(method string) (JobStatus, float64) {
		t.Helper()
		best := JobStatus{}
		bestMS := 0.0
		for i := 0; i < 3; i++ {
			code, st := postSolve(t, ts.URL, SolveRequest{Matrix: illMatrix, Method: method})
			if code != http.StatusOK || st.State != JobDone {
				t.Fatalf("solve method=%s: HTTP %d state=%s result=%+v", method, code, st.State, st.Result)
			}
			if bestMS == 0 || st.Result.SolveMS < bestMS {
				best, bestMS = st, st.Result.SolveMS
			}
		}
		return best, bestMS
	}
	auto, autoMS := solveMin("auto")
	if auto.Result.TuneSource != "store" {
		t.Errorf("auto resolution source = %q, want store", auto.Result.TuneSource)
	}
	if auto.Result.TunedConfig == nil || *auto.Result.TunedConfig != d.Winner {
		t.Errorf("tuned_config = %+v, want winner %+v", auto.Result.TunedConfig, d.Winner)
	}
	if !auto.Result.Converged {
		t.Errorf("auto solve did not converge: %+v", auto.Result)
	}
	_, pcgMS := solveMin("pcg")
	// The tuned configuration must not lose to the static PCG baseline
	// (generous slack absorbs scheduler noise on tiny solves).
	if autoMS > pcgMS*1.25 {
		t.Errorf("auto solve (%.3fms) slower than static pcg baseline (%.3fms)", autoMS, pcgMS)
	}

	shutdownServer(t, s)
	ts.Close()

	// Fresh server, same store file: the decision must be served without
	// re-tuning.
	s2 := New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer shutdownServer(t, s2)

	resp, err := http.Get(ts2.URL + "/tune/" + illMatrix)
	if err != nil {
		t.Fatal(err)
	}
	var d2 tune.Decision
	if err := json.NewDecoder(resp.Body).Decode(&d2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tune after reopen: HTTP %d", resp.StatusCode)
	}
	if d2.Winner != d.Winner {
		t.Errorf("winner changed across store reopen: %v vs %v", d2.Winner, d.Winner)
	}
	code, st := postSolve(t, ts2.URL, SolveRequest{Matrix: illMatrix, Method: "auto"})
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("auto solve after reopen: HTTP %d %+v", code, st)
	}
	if st.Result.TuneSource != "store" {
		t.Errorf("after reopen, auto source = %q, want store", st.Result.TuneSource)
	}
	m := getMetrics(t, ts2.URL)
	if m.Tune.Runs != 0 {
		t.Errorf("reopened server re-tuned (runs=%d), store should have served", m.Tune.Runs)
	}
	if m.Tune.StoreEntries != 1 {
		t.Errorf("store entries = %d, want 1", m.Tune.StoreEntries)
	}
}

// TestAutoColdMiss: with an empty store the first auto request is served
// immediately from the seeded guess while trials run in the background, and
// a later request hits the stored decision.
func TestAutoColdMiss(t *testing.T) {
	s := New(Config{Workers: 2, Scale: 1, TuneProbeIters: 20, TuneRounds: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", Method: "auto"})
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("cold auto solve: HTTP %d %+v", code, st)
	}
	if st.Result.TuneSource != "seed" {
		t.Errorf("cold auto source = %q, want seed", st.Result.TuneSource)
	}
	if st.Result.TunedConfig == nil {
		t.Fatal("cold auto solve missing tuned_config")
	}

	// Background trials land eventually; then the warm path serves the store.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		if m.Tune.Runs >= 1 && m.Tune.StoreEntries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background tuning never completed: %+v", m.Tune)
		}
		time.Sleep(50 * time.Millisecond)
	}
	code, st = postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", Method: "auto"})
	if code != http.StatusOK || st.Result.TuneSource != "store" {
		t.Fatalf("warm auto solve: HTTP %d source=%q", code, st.Result.TuneSource)
	}
	m := getMetrics(t, ts.URL)
	if m.Tune.Requests < 2 || m.Tune.StoreHits < 1 || m.Tune.StoreMisses < 1 || m.Tune.Trials == 0 {
		t.Errorf("tune metrics inconsistent: %+v", m.Tune)
	}
}

// TestAutoBackgroundTuneDeduped: a burst of cold auto requests for one
// matrix starts at most one background tuning run.
func TestAutoBackgroundTuneDeduped(t *testing.T) {
	s := New(Config{Workers: 4, Scale: 1, TuneProbeIters: 20, TuneRounds: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:12", Method: "auto", NoBatch: true})
		if code != http.StatusOK || st.State != JobDone {
			t.Fatalf("auto solve %d: HTTP %d %+v", i, code, st)
		}
	}
	shutdownServer(t, s) // waits for background tuning
	if runs := s.met.tuneRuns.Value(); runs > 1 {
		t.Errorf("background tuning ran %d times for one matrix, want ≤ 1", runs)
	}
}

// TestBadBasisRejected (satellite): unknown basis strings are refused at
// admission with the named error and HTTP 400; casing and whitespace are
// normalized rather than rejected.
func TestBadBasisRejected(t *testing.T) {
	s := New(Config{Workers: 1, Scale: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	if _, err := s.Submit(SolveRequest{Matrix: "poisson2d:8", Method: "spcg", S: 4, Basis: "legendre"}); !errors.Is(err, ErrBadBasis) {
		t.Errorf("Submit with unknown basis: err = %v, want ErrBadBasis", err)
	}
	code, body := postJSON(t, ts.URL+"/solve", SolveRequest{Matrix: "poisson2d:8", Method: "spcg", S: 4, Basis: "legendre"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown basis: HTTP %d, want 400 (%s)", code, body)
	}
	if !bytes.Contains(body, []byte("unknown basis")) {
		t.Errorf("error body does not name the basis failure: %s", body)
	}
	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:8", Method: "spcg", S: 4, Basis: "  Chebyshev "})
	if code != http.StatusOK || st.State != JobDone {
		t.Errorf("normalized basis rejected: HTTP %d %+v", code, st)
	}
}

// TestTuneEndpointValidation: bad bodies and unknown matrices are 4xx, and
// an untuned matrix is a 404.
func TestTuneEndpointValidation(t *testing.T) {
	s := New(Config{Workers: 1, Scale: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	if code, _ := postJSON(t, ts.URL+"/tune", map[string]string{}); code != http.StatusBadRequest {
		t.Errorf("POST /tune without matrix: HTTP %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/tune", map[string]string{"matrix": "mystery:4"}); code != http.StatusBadRequest {
		t.Errorf("POST /tune unknown matrix: HTTP %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/tune/poisson2d:8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /tune untuned matrix: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestTuneShutdownCancelsBackground: Shutdown with an expired context still
// returns promptly while a background tune is in flight (probes observe the
// base context).
func TestTuneShutdownCancelsBackground(t *testing.T) {
	s := New(Config{Workers: 2, Scale: 1, TuneProbeIters: 2000, TuneRounds: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: illMatrix, Method: "auto"})
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("auto solve: HTTP %d %+v", code, st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = s.Shutdown(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Shutdown took %s with a background tune in flight", elapsed)
	}
}
