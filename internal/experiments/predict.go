package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/perfmodel"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// PredictRow compares the Table-1-based closed-form time model against the
// event-level tracked simulation for one algorithm at one node count.
type PredictRow struct {
	Alg       perfmodel.Algorithm
	Nodes     int
	Predicted float64 // closed-form seconds per s steps
	Measured  float64 // tracked simulation seconds per s steps
	Ratio     float64
}

// RunPredict cross-validates perfmodel.Predict against the instrumented
// solvers on a 3D Poisson problem with a Jacobi preconditioner: both views
// derive from the same machine model, so per-s-steps times should agree
// within the model's granularity (the closed forms ignore once-per-solve
// setup and round payloads).
func RunPredict(cfg Config, dim int, nodeCounts []int) ([]PredictRow, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 32
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 4, 16}
	}
	a := sparse.Poisson3D(dim, dim, dim)
	st, err := newSetupRandomRHS(a, 99, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	runs := map[perfmodel.Algorithm]solverFn{
		perfmodel.PCG:     solver.PCG,
		perfmodel.SPCGMon: solver.SPCGMon,
		perfmodel.SPCG:    solver.SPCG,
		perfmodel.CAPCG:   solver.CAPCG,
		perfmodel.CAPCG3:  solver.CAPCG3,
	}
	var out []PredictRow
	for _, nodes := range nodeCounts {
		cl, err := dist.NewCluster(cfg.Machine, nodes, a)
		if err != nil {
			return nil, err
		}
		precFlops := float64(a.Dim()) // Jacobi
		for _, alg := range perfmodel.Algorithms() {
			pred, err := perfmodel.Predict(alg, cfg.S, cl, precFlops, 0, alg != perfmodel.PCG && alg != perfmodel.SPCGMon)
			if err != nil {
				return nil, err
			}
			opts := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
			if alg == perfmodel.PCG || alg == perfmodel.SPCGMon {
				opts.Basis = basis.Monomial
			}
			opts.Tracker = dist.NewTracker(cl)
			_, _, stats := runOne(runs[alg], st, opts)
			row := PredictRow{Alg: alg, Nodes: nodes, Predicted: pred.Total}
			if stats != nil && stats.Iterations >= cfg.S {
				row.Measured = stats.SimTime * float64(cfg.S) / float64(stats.Iterations)
				row.Ratio = row.Measured / row.Predicted
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderPredict writes the comparison.
func RenderPredict(w io.Writer, rows []PredictRow, s int) {
	fmt.Fprintf(w, "Closed-form (Table 1 based) vs event-level simulated time per s = %d steps\n", s)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\tnodes\tpredicted\tsimulated\tsim/pred")
	for _, r := range rows {
		if r.Measured == 0 {
			fmt.Fprintf(tw, "%s\t%d\t%.3gs\t-\t-\n", r.Alg, r.Nodes, r.Predicted)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3gs\t%.3gs\t%.2f\n", r.Alg, r.Nodes, r.Predicted, r.Measured, r.Ratio)
	}
	tw.Flush()
}
