package service

import (
	"sync"
	"sync/atomic"
	"time"

	"spcg/internal/obs"
	"spcg/internal/pool"
)

// histBounds are the request-latency bucket upper bounds in seconds. The
// quantile estimate interpolates inside the winning bucket, which is accurate
// enough for serving dashboards (the load generator computes exact
// percentiles from its own samples).
var histBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics is the server's typed metric surface, built on obs.Registry so one
// set of instruments feeds both exposition formats: Prometheus text (the
// /metrics default) and the structured MetricsSnapshot JSON
// (/metrics?format=json). Scrape-time funcs cover the values owned elsewhere
// — uptime, setup-cache stats, the pool engine's kernel counters — so they
// are never double-booked.
type metrics struct {
	reg *obs.Registry

	requests  *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	dedupHits *obs.Counter

	inFlight *obs.Gauge
	// queued counts admitted-but-unfinished jobs; spcgd_queue_depth derives
	// from it at scrape time (queued − in-flight, clamped at zero).
	queued atomic.Int64

	batchedRequests *obs.Counter
	blockSolves     *obs.Counter
	soloSolves      *obs.Counter
	maxBatch        *obs.Gauge

	iterations  *obs.Counter
	mvProducts  *obs.Counter
	precApplies *obs.Counter

	// Resilience families (see docs/RESILIENCE.md).
	panics          *obs.Counter
	stagnated       *obs.Counter
	degraded        *obs.Counter
	breakerOpened   *obs.Counter
	breakerRestored *obs.Counter
	commRetries     *obs.Counter
	srv             *Server // bound by bindResilience for scrape-time funcs

	// Storage-format families (see DESIGN.md "Storage engine").
	formatCSRSolves   *obs.Counter
	formatSellSolves  *obs.Counter
	formatRCMSolves   *obs.Counter
	formatConversions *obs.Counter

	// Autotuning families (see docs/TUNING.md).
	tuneRequests    *obs.Counter
	tuneStoreHits   *obs.Counter
	tuneStoreMisses *obs.Counter
	tuneTrials      *obs.Counter
	tuneBreakdowns  *obs.Counter
	tuneRuns        *obs.Counter
	tuneStoreErrors *obs.Counter

	mu      sync.Mutex
	latency map[string]*obs.Histogram // per solver method
}

func newMetrics(start time.Time, cache *setupCache) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg, latency: map[string]*obs.Histogram{}}

	m.requests = reg.Counter("spcgd_requests_total", "Accepted solve submissions.")
	m.rejected = reg.Counter("spcgd_rejected_total", "Submissions refused at admission (queue full or shutting down).")
	m.dedupHits = reg.Counter("spcgd_dedup_hits_total", "Resubmissions answered by an existing job via request_id idempotency.")
	m.completed = reg.Counter("spcgd_completed_total", "Jobs finished with status done.")
	m.failed = reg.Counter("spcgd_failed_total", "Jobs finished with status failed.")
	m.cancelled = reg.Counter("spcgd_cancelled_total", "Jobs finished with status cancelled.")

	m.inFlight = reg.Gauge("spcgd_in_flight", "Jobs currently executing on the worker pool.")
	reg.GaugeFunc("spcgd_queue_depth", "Admitted jobs waiting for a worker (queued minus in-flight).",
		func() float64 {
			d := float64(m.queued.Load()) - m.inFlight.Value()
			if d < 0 {
				d = 0
			}
			return d
		})
	reg.GaugeFunc("spcgd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(start).Seconds() })

	reg.CounterFunc("spcgd_setup_cache_hits_total", "Setup-cache lookups that reused a cached preconditioner/spectrum entry.",
		func() float64 { h, _, _ := cache.stats(); return float64(h) })
	reg.CounterFunc("spcgd_setup_cache_misses_total", "Setup-cache lookups that had to build a fresh entry.",
		func() float64 { _, mi, _ := cache.stats(); return float64(mi) })
	reg.GaugeFunc("spcgd_setup_cache_entries", "Entries currently resident in the setup cache.",
		func() float64 { _, _, e := cache.stats(); return float64(e) })
	reg.GaugeFunc("spcgd_setup_cache_hit_ratio", "Fraction of setup-cache lookups served from cache.",
		func() float64 {
			h, mi, _ := cache.stats()
			if h+mi == 0 {
				return 0
			}
			return float64(h) / float64(h+mi)
		})

	m.batchedRequests = reg.Counter("spcgd_batched_requests_total", "Jobs that ran inside a coalesced block solve (batch size >= 2).")
	m.blockSolves = reg.Counter("spcgd_block_solves_total", "Coalesced multi-RHS block solves executed.")
	m.soloSolves = reg.Counter("spcgd_solo_solves_total", "Jobs solved individually (not coalesced).")
	m.maxBatch = reg.Gauge("spcgd_batch_size_max", "Largest coalesced batch observed since start.")

	m.iterations = reg.Counter("spcgd_solver_iterations_total", "Solver iterations summed over all jobs.")
	m.mvProducts = reg.Counter("spcgd_solver_mv_products_total", "Sparse matrix-vector products summed over all jobs.")
	m.precApplies = reg.Counter("spcgd_solver_prec_applies_total", "Preconditioner applications summed over all jobs.")

	m.panics = reg.Counter("spcgd_solver_panics_total", "Solve panics recovered by the worker guard (each becomes a failed job, never a crash).")
	m.stagnated = reg.Counter("spcgd_stagnated_total", "Jobs killed by the stagnation watchdog (terminal state stagnated).")
	m.degraded = reg.Counter("spcgd_degraded_solves_total", "Solves rerouted down the method ladder by an open circuit breaker.")
	m.breakerOpened = reg.Counter("spcgd_breaker_opened_total", "Circuit-breaker open transitions (including re-opens after a failed probe).")
	m.breakerRestored = reg.Counter("spcgd_breaker_restored_total", "Circuit-breaker restorations (successful half-open probes closing the circuit).")
	m.commRetries = reg.Counter("spcgd_comm_retries_total", "Modeled communication retries charged by chaos fault trackers, summed over jobs.")

	m.formatCSRSolves = reg.Counter("spcgd_format_csr_solves_total", "Solves served on CSR storage (the format selector kept the baseline).")
	m.formatSellSolves = reg.Counter("spcgd_format_sell_solves_total", "Solves served on SELL-C-sigma storage.")
	m.formatRCMSolves = reg.Counter("spcgd_format_rcm_solves_total", "Solves served on an RCM-reordered operator (solutions un-permuted before leaving the daemon).")
	m.formatConversions = reg.Counter("spcgd_format_conversions_total", "SELL-C-sigma conversions built (once per fingerprint and combo, LRU aside).")

	m.tuneRequests = reg.Counter("spcgd_tune_requests_total", "method:\"auto\" requests resolved through the autotuner.")
	m.tuneStoreHits = reg.Counter("spcgd_tune_store_hits_total", "Auto resolutions served from a persisted tuning decision.")
	m.tuneStoreMisses = reg.Counter("spcgd_tune_store_misses_total", "Auto resolutions that found no stored decision (seeded guess served, background trials started).")
	m.tuneTrials = reg.Counter("spcgd_tune_trials_total", "Capped-iteration tuning probe solves executed.")
	m.tuneBreakdowns = reg.Counter("spcgd_tune_trial_breakdowns_total", "Tuning probes that ended in numerical breakdown (their candidate is eliminated).")
	m.tuneRuns = reg.Counter("spcgd_tune_runs_total", "Completed tuning runs that produced a stored decision.")
	m.tuneStoreErrors = reg.Counter("spcgd_tune_store_errors_total", "Tune-store persistence failures (open or write).")

	// The pool engine owns its kernel counters (process-wide atomics); expose
	// them read-through so /metrics shows whether fusion is engaged in
	// production, not just in benchmarks.
	reg.CounterFunc("spcgd_kernel_dispatches_total", "Worker-pool parallel kernel dispatches.",
		func() float64 { return float64(pool.ReadStats().Dispatches) })
	reg.CounterFunc("spcgd_kernel_inline_runs_total", "Kernel dispatches degraded to inline execution.",
		func() float64 { return float64(pool.ReadStats().InlineRuns) })
	reg.CounterFunc("spcgd_kernel_fused_gram_total", "Fused cache-blocked Gram kernel invocations.",
		func() float64 { return float64(pool.ReadStats().FusedGramCalls) })
	reg.CounterFunc("spcgd_kernel_fused_combine_total", "Fused block-combine kernel invocations.",
		func() float64 { return float64(pool.ReadStats().FusedCombines) })
	reg.CounterFunc("spcgd_kernel_fused_basis_steps_total", "Fused SpMV+three-term+diag basis steps.",
		func() float64 { return float64(pool.ReadStats().FusedBasisSteps) })
	reg.CounterFunc("spcgd_kernel_spmv_dispatches_total", "Pool-dispatched SpMV kernels.",
		func() float64 { return float64(pool.ReadStats().SpMVDispatches) })
	reg.GaugeFunc("spcgd_kernel_workers", "Shared kernel pool worker count.",
		func() float64 { return float64(pool.DefaultWorkers()) })

	return m
}

// bindResilience registers the scrape-time resilience gauges once the server
// (breakers, shed window, health machine, chaos state) exists; counters are
// created in newMetrics so increments never race construction.
func (m *metrics) bindResilience(s *Server) {
	m.srv = s
	m.reg.GaugeFunc("spcgd_breakers_open", "Circuits currently denying their fast path (open or half-open).",
		func() float64 {
			if s.breakers == nil {
				return 0
			}
			return float64(s.breakers.OpenCount())
		})
	m.reg.GaugeFunc("spcgd_shed_rate", "Admissions rejected per second over the last 30s window.",
		func() float64 { return s.shed.Rate() })
	m.reg.GaugeFunc("spcgd_health_state", "Serving health state machine: 0 healthy, 1 degraded, 2 draining.",
		func() float64 { return float64(s.Health()) })
	if s.chaos != nil {
		m.reg.CounterFunc("spcgd_chaos_panics_injected_total", "Panics injected by the chaos layer (chaos mode only).",
			s.chaos.injectedPanics)
	}
}

// bindTune registers the scrape-time tune-store gauge once the server's
// tuner exists (same pattern as bindResilience).
func (m *metrics) bindTune(s *Server) {
	m.reg.GaugeFunc("spcgd_tune_store_entries", "Tuning decisions currently resident in the store.",
		func() float64 { return float64(s.tuner.store.Len()) })
}

// bindFormats registers the scrape-time format-cache gauge once the server's
// format engine exists.
func (m *metrics) bindFormats(s *Server) {
	m.reg.GaugeFunc("spcgd_format_cache_entries", "Per-fingerprint storage decisions currently resident in the format cache.",
		func() float64 { return float64(s.formats.entries()) })
}

// observe records one request latency under its solver method label.
func (m *metrics) observe(method string, d time.Duration) {
	m.mu.Lock()
	h := m.latency[method]
	if h == nil {
		h = m.reg.Histogram("spcgd_request_duration_seconds",
			"End-to-end solve latency by solver method.", histBounds, obs.L("method", method))
		m.latency[method] = h
	}
	m.mu.Unlock()
	h.Observe(d.Seconds())
}

// LatencySnapshot is the per-method latency summary in the JSON /metrics view.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MetricsSnapshot is the JSON document served at /metrics?format=json. It is
// a structured view over the same registry the Prometheus exposition reads.
type MetricsSnapshot struct {
	UptimeS    float64 `json:"uptime_s"`
	QueueDepth int64   `json:"queue_depth"`
	InFlight   int64   `json:"in_flight"`

	RequestsTotal int64 `json:"requests_total"`
	Rejected      int64 `json:"rejected_total"`
	Completed     int64 `json:"completed_total"`
	Failed        int64 `json:"failed_total"`
	Cancelled     int64 `json:"cancelled_total"`

	SetupCache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"setup_cache"`

	Batching struct {
		BatchedRequests int64 `json:"batched_requests"`
		BlockSolves     int64 `json:"block_solves"`
		SoloSolves      int64 `json:"solo_solves"`
		MaxBatch        int64 `json:"max_batch"`
	} `json:"batching"`

	Solver struct {
		IterationsTotal  int64 `json:"iterations_total"`
		MVProductsTotal  int64 `json:"mv_products_total"`
		PrecAppliesTotal int64 `json:"prec_applies_total"`
	} `json:"solver"`

	// Resilience summarizes the fault-survival layer: panic isolation,
	// stagnation watchdog, circuit breakers and load shedding.
	Resilience struct {
		Health          string  `json:"health"`
		SolverPanics    int64   `json:"solver_panics_total"`
		Stagnated       int64   `json:"stagnated_total"`
		DegradedSolves  int64   `json:"degraded_solves_total"`
		BreakerOpened   int64   `json:"breaker_opened_total"`
		BreakerRestored int64   `json:"breaker_restored_total"`
		BreakersOpen    int     `json:"breakers_open"`
		CommRetries     int64   `json:"comm_retries_total"`
		ShedRate        float64 `json:"shed_rate"`
	} `json:"resilience"`

	// Formats summarizes the structure-adaptive storage engine: which format
	// solves actually ran on and how many SELL conversions were built.
	Formats struct {
		CSRSolves    int64 `json:"csr_solves_total"`
		SellSolves   int64 `json:"sell_solves_total"`
		RCMSolves    int64 `json:"rcm_solves_total"`
		Conversions  int64 `json:"conversions_total"`
		CacheEntries int   `json:"cache_entries"`
	} `json:"formats"`

	// Tune summarizes the autotuning subsystem: how method:"auto" requests
	// resolved and what the trial schedule has been doing.
	Tune struct {
		Requests        int64 `json:"requests_total"`
		StoreHits       int64 `json:"store_hits_total"`
		StoreMisses     int64 `json:"store_misses_total"`
		Trials          int64 `json:"trials_total"`
		TrialBreakdowns int64 `json:"trial_breakdowns_total"`
		Runs            int64 `json:"runs_total"`
		StoreErrors     int64 `json:"store_errors_total"`
		StoreEntries    int   `json:"store_entries"`
	} `json:"tune"`

	// Kernels exposes the shared worker-pool engine's counters (process-wide,
	// not per-request): pool dispatches vs inline fallbacks, how often the
	// fused Gram/combine/basis-step kernels ran, and the effective worker
	// count — the observability hook for verifying fusion is engaged in
	// production, not just in benchmarks.
	Kernels pool.Stats `json:"kernels"`

	Latency map[string]LatencySnapshot `json:"latency"`
}

func (m *metrics) snapshot(start time.Time, cache *setupCache) MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeS = time.Since(start).Seconds()
	s.InFlight = int64(m.inFlight.Value())
	s.QueueDepth = m.queued.Load() - s.InFlight
	if s.QueueDepth < 0 {
		s.QueueDepth = 0
	}
	s.RequestsTotal = m.requests.Value()
	s.Rejected = m.rejected.Value()
	s.Completed = m.completed.Value()
	s.Failed = m.failed.Value()
	s.Cancelled = m.cancelled.Value()
	hits, misses, entries := cache.stats()
	s.SetupCache.Hits = hits
	s.SetupCache.Misses = misses
	if hits+misses > 0 {
		s.SetupCache.HitRate = float64(hits) / float64(hits+misses)
	}
	s.SetupCache.Entries = entries
	s.Batching.BatchedRequests = m.batchedRequests.Value()
	s.Batching.BlockSolves = m.blockSolves.Value()
	s.Batching.SoloSolves = m.soloSolves.Value()
	s.Batching.MaxBatch = int64(m.maxBatch.Value())
	s.Solver.IterationsTotal = m.iterations.Value()
	s.Solver.MVProductsTotal = m.mvProducts.Value()
	s.Solver.PrecAppliesTotal = m.precApplies.Value()
	s.Resilience.SolverPanics = m.panics.Value()
	s.Resilience.Stagnated = m.stagnated.Value()
	s.Resilience.DegradedSolves = m.degraded.Value()
	s.Resilience.BreakerOpened = m.breakerOpened.Value()
	s.Resilience.BreakerRestored = m.breakerRestored.Value()
	if m.srv != nil {
		s.Resilience.Health = m.srv.Health().String()
		if m.srv.breakers != nil {
			s.Resilience.BreakersOpen = m.srv.breakers.OpenCount()
		}
		s.Resilience.ShedRate = m.srv.shed.Rate()
	}
	s.Resilience.CommRetries = m.commRetries.Value()
	s.Formats.CSRSolves = m.formatCSRSolves.Value()
	s.Formats.SellSolves = m.formatSellSolves.Value()
	s.Formats.RCMSolves = m.formatRCMSolves.Value()
	s.Formats.Conversions = m.formatConversions.Value()
	if m.srv != nil {
		s.Formats.CacheEntries = m.srv.formats.entries()
	}
	s.Tune.Requests = m.tuneRequests.Value()
	s.Tune.StoreHits = m.tuneStoreHits.Value()
	s.Tune.StoreMisses = m.tuneStoreMisses.Value()
	s.Tune.Trials = m.tuneTrials.Value()
	s.Tune.TrialBreakdowns = m.tuneBreakdowns.Value()
	s.Tune.Runs = m.tuneRuns.Value()
	s.Tune.StoreErrors = m.tuneStoreErrors.Value()
	if m.srv != nil {
		s.Tune.StoreEntries = m.srv.tuner.store.Len()
	}
	s.Kernels = pool.ReadStats()
	s.Latency = map[string]LatencySnapshot{}
	m.mu.Lock()
	defer m.mu.Unlock()
	for method, h := range m.latency {
		hs := h.Snapshot()
		count := hs.Count
		if count < 1 {
			count = 1
		}
		s.Latency[method] = LatencySnapshot{
			Count:  hs.Count,
			MeanMS: 1000 * hs.Sum / float64(count),
			P50MS:  1000 * hs.Quantile(0.50),
			P95MS:  1000 * hs.Quantile(0.95),
			P99MS:  1000 * hs.Quantile(0.99),
			MaxMS:  1000 * hs.Max,
		}
	}
	return s
}
