// Command spcgload drives a running spcgd with a concurrent solve burst and
// reports exact client-side latency percentiles plus the server's /metrics
// snapshot:
//
//	spcgload [-addr http://localhost:8097] [-n 100] [-c 8]
//	         [-methods pcg,pcg3,spcg,capcg,capcg3]
//	         [-matrices poisson2d:16,poisson2d:24] [-precond jacobi]
//	         [-s 4] [-tol 0] [-timeout 60s] [-out BENCH_serve.json]
//
// The process exits non-zero if any request fails, so CI can use it as a
// smoke test.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type solveRequest struct {
	Matrix  string  `json:"matrix"`
	Method  string  `json:"method"`
	Precond string  `json:"precond,omitempty"`
	S       int     `json:"s,omitempty"`
	Tol     float64 `json:"tol,omitempty"`
	RHS     string  `json:"rhs,omitempty"`
}

type solveResult struct {
	Converged  bool    `json:"converged"`
	Iterations int     `json:"iterations"`
	Batched    bool    `json:"batched"`
	BatchSize  int     `json:"batch_size"`
	SolveMS    float64 `json:"solve_ms"`
	Error      string  `json:"error,omitempty"`
}

type jobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Result *solveResult `json:"result"`
}

type sample struct {
	method    string
	latencyMS float64
	ok        bool
	batched   bool
	err       string
}

// report is the BENCH_serve.json document.
type report struct {
	Addr        string             `json:"addr"`
	Requests    int                `json:"requests"`
	Concurrency int                `json:"concurrency"`
	Successes   int                `json:"successes"`
	Failures    int                `json:"failures"`
	Batched     int                `json:"batched"`
	WallS       float64            `json:"wall_s"`
	Throughput  float64            `json:"throughput_rps"`
	LatencyMS   map[string]float64 `json:"latency_ms"` // p50/p90/p95/p99/max/mean
	PerMethod   map[string]int     `json:"per_method"`
	Errors      []string           `json:"errors,omitempty"`
	Server      json.RawMessage    `json:"server_metrics,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8097", "spcgd base URL")
	n := flag.Int("n", 100, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	methodsFlag := flag.String("methods", "pcg,pcg3,spcg,capcg,capcg3", "comma-separated methods to cycle")
	matricesFlag := flag.String("matrices", "poisson2d:16,poisson2d:24", "comma-separated matrices to cycle")
	precond := flag.String("precond", "jacobi", "preconditioner spec")
	sVal := flag.Int("s", 4, "s-step block size")
	tol := flag.Float64("tol", 0, "relative tolerance (0 = server default)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write a JSON report to this file")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "spcgload: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	methods := splitList(*methodsFlag)
	matrices := splitList(*matricesFlag)
	if len(methods) == 0 || len(matrices) == 0 || *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "spcgload: need non-empty -methods/-matrices and positive -n/-c")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	samples := make([]sample, *n)
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := solveRequest{
					Matrix:  matrices[i%len(matrices)],
					Method:  methods[i%len(methods)],
					Precond: *precond,
					S:       *sVal,
					Tol:     *tol,
				}
				samples[i] = doSolve(client, *addr, req)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := summarize(samples, *addr, *n, *c, wall)
	if body, err := fetchMetrics(client, *addr); err == nil {
		rep.Server = body
	} else {
		fmt.Fprintf(os.Stderr, "spcgload: fetch /metrics: %v\n", err)
	}

	fmt.Printf("spcgload: %d/%d ok (%d batched) in %.2fs — %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms\n",
		rep.Successes, rep.Requests, rep.Batched, rep.WallS, rep.Throughput,
		rep.LatencyMS["p50"], rep.LatencyMS["p95"], rep.LatencyMS["p99"])
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "spcgload: %s\n", e)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spcgload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("spcgload: report written to %s\n", *out)
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if t := strings.TrimSpace(tok); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func doSolve(client *http.Client, addr string, req solveRequest) sample {
	smp := sample{method: req.Method}
	body, err := json.Marshal(req)
	if err != nil {
		smp.err = err.Error()
		return smp
	}
	t0 := time.Now()
	resp, err := client.Post(addr+"/solve", "application/json", bytes.NewReader(body))
	smp.latencyMS = float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		smp.err = err.Error()
		return smp
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		smp.err = fmt.Sprintf("HTTP %d: %v", resp.StatusCode, err)
		return smp
	}
	if resp.StatusCode != http.StatusOK || st.Result == nil || !st.Result.Converged {
		msg := st.State
		if st.Result != nil && st.Result.Error != "" {
			msg = st.Result.Error
		}
		smp.err = fmt.Sprintf("%s on %s: HTTP %d, state %s (%s)", req.Method, req.Matrix, resp.StatusCode, st.State, msg)
		return smp
	}
	smp.ok = true
	smp.batched = st.Result.Batched && st.Result.BatchSize >= 2
	return smp
}

func fetchMetrics(client *http.Client, addr string) (json.RawMessage, error) {
	resp, err := client.Get(addr + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func summarize(samples []sample, addr string, n, c int, wall time.Duration) *report {
	rep := &report{
		Addr:        addr,
		Requests:    n,
		Concurrency: c,
		WallS:       wall.Seconds(),
		LatencyMS:   map[string]float64{},
		PerMethod:   map[string]int{},
	}
	var lats []float64
	var sum float64
	for _, s := range samples {
		rep.PerMethod[s.method]++
		if s.ok {
			rep.Successes++
		} else {
			rep.Failures++
			if len(rep.Errors) < 10 {
				rep.Errors = append(rep.Errors, s.err)
			}
		}
		if s.batched {
			rep.Batched++
		}
		lats = append(lats, s.latencyMS)
		sum += s.latencyMS
	}
	rep.Throughput = float64(n) / wall.Seconds()
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.LatencyMS["mean"] = sum / float64(len(samples))
	rep.LatencyMS["p50"] = pct(0.50)
	rep.LatencyMS["p90"] = pct(0.90)
	rep.LatencyMS["p95"] = pct(0.95)
	rep.LatencyMS["p99"] = pct(0.99)
	rep.LatencyMS["max"] = pct(1.0)
	return rep
}
