package service

import (
	"sort"
	"sync"
	"time"

	"spcg/internal/pool"
)

// histBounds are the latency bucket upper bounds in seconds. The quantile
// estimate interpolates inside the winning bucket, which is accurate enough
// for serving dashboards (the load generator computes exact percentiles from
// its own samples).
var histBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// hist is a fixed-bucket latency histogram.
type hist struct {
	counts []int64 // len(histBounds)+1; last bucket is +Inf
	count  int64
	sum    float64
	max    float64
}

func newHist() *hist { return &hist{counts: make([]int64, len(histBounds)+1)} }

func (h *hist) observe(sec float64) {
	i := sort.SearchFloat64s(histBounds, sec)
	h.counts[i]++
	h.count++
	h.sum += sec
	if sec > h.max {
		h.max = sec
	}
}

// quantile returns an estimate of the p-quantile (0 < p < 1) in seconds.
func (h *hist) quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(p * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, c := range h.counts {
		if cum+c > target {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := h.max
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.5
			if c > 0 {
				frac = (float64(target-cum) + 0.5) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.max
}

// metrics aggregates the serving counters exposed at /metrics. A single
// mutex is enough: updates are a handful of integer ops per request.
type metrics struct {
	mu sync.Mutex

	requests  int64 // accepted solve submissions
	rejected  int64 // refused at admission (queue full / shutting down)
	completed int64 // finished with status done
	failed    int64
	cancelled int64

	inFlight   int64 // jobs currently executing
	queuedJobs int64 // jobs admitted but not yet finished executing

	batchedRequests  int64 // jobs that ran inside a coalesced block solve (size ≥ 2)
	blockSolves      int64 // batch executions with ≥ 2 columns
	soloSolves       int64
	maxBatch         int64
	iterationsTotal  int64
	mvProductsTotal  int64
	precAppliesTotal int64

	latency map[string]*hist // per method
}

func newMetrics() *metrics { return &metrics{latency: map[string]*hist{}} }

func (m *metrics) observe(method string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[method]
	if h == nil {
		h = newHist()
		m.latency[method] = h
	}
	h.observe(d.Seconds())
}

func (m *metrics) add(f func(*metrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
}

// LatencySnapshot is the per-method latency summary in /metrics.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeS    float64 `json:"uptime_s"`
	QueueDepth int64   `json:"queue_depth"`
	InFlight   int64   `json:"in_flight"`

	RequestsTotal int64 `json:"requests_total"`
	Rejected      int64 `json:"rejected_total"`
	Completed     int64 `json:"completed_total"`
	Failed        int64 `json:"failed_total"`
	Cancelled     int64 `json:"cancelled_total"`

	SetupCache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"setup_cache"`

	Batching struct {
		BatchedRequests int64 `json:"batched_requests"`
		BlockSolves     int64 `json:"block_solves"`
		SoloSolves      int64 `json:"solo_solves"`
		MaxBatch        int64 `json:"max_batch"`
	} `json:"batching"`

	Solver struct {
		IterationsTotal  int64 `json:"iterations_total"`
		MVProductsTotal  int64 `json:"mv_products_total"`
		PrecAppliesTotal int64 `json:"prec_applies_total"`
	} `json:"solver"`

	// Kernels exposes the shared worker-pool engine's counters (process-wide,
	// not per-request): pool dispatches vs inline fallbacks, how often the
	// fused Gram/combine/basis-step kernels ran, and the effective worker
	// count — the observability hook for verifying fusion is engaged in
	// production, not just in benchmarks.
	Kernels pool.Stats `json:"kernels"`

	Latency map[string]LatencySnapshot `json:"latency"`
}

func (m *metrics) snapshot(start time.Time, cache *setupCache) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s MetricsSnapshot
	s.UptimeS = time.Since(start).Seconds()
	s.QueueDepth = m.queuedJobs - m.inFlight
	if s.QueueDepth < 0 {
		s.QueueDepth = 0
	}
	s.InFlight = m.inFlight
	s.RequestsTotal = m.requests
	s.Rejected = m.rejected
	s.Completed = m.completed
	s.Failed = m.failed
	s.Cancelled = m.cancelled
	hits, misses, entries := cache.stats()
	s.SetupCache.Hits = hits
	s.SetupCache.Misses = misses
	if hits+misses > 0 {
		s.SetupCache.HitRate = float64(hits) / float64(hits+misses)
	}
	s.SetupCache.Entries = entries
	s.Batching.BatchedRequests = m.batchedRequests
	s.Batching.BlockSolves = m.blockSolves
	s.Batching.SoloSolves = m.soloSolves
	s.Batching.MaxBatch = m.maxBatch
	s.Solver.IterationsTotal = m.iterationsTotal
	s.Solver.MVProductsTotal = m.mvProductsTotal
	s.Solver.PrecAppliesTotal = m.precAppliesTotal
	s.Kernels = pool.ReadStats()
	s.Latency = map[string]LatencySnapshot{}
	for method, h := range m.latency {
		s.Latency[method] = LatencySnapshot{
			Count:  h.count,
			MeanMS: 1000 * h.sum / float64(max64(h.count, 1)),
			P50MS:  1000 * h.quantile(0.50),
			P95MS:  1000 * h.quantile(0.95),
			P99MS:  1000 * h.quantile(0.99),
			MaxMS:  1000 * h.max,
		}
	}
	return s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
