// Package obs is a stub of the repo's metrics registry, just enough for the
// metricdoc fixtures to reference by import path.
package obs

// Registry registers metric families.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotone metric family.
type Counter struct{}

// Gauge is a point-in-time metric family.
type Gauge struct{}

// Counter registers a counter family.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeFunc registers a computed gauge family.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}
