// Package md exercises metricdoc: one documented family, one missing
// family, one non-literal name, one documented route and one ghost route.
package md

import "fixmod/obs"

// route mirrors the serving packages' route-table element shape.
type route struct {
	pattern string
	name    string
}

// routes is the table the analyzer checks against docs/API.md.
var routes = []route{
	{"POST /solve", "solve"},
	{"GET /ghost", "ghost"},
}

// Register creates the fixture's metric families.
func Register(reg *obs.Registry, dynamic string) {
	reg.Counter("fix_documented_total", "Documented in the fixture docs.")
	reg.Counter("fix_missing_total", "Missing from the fixture docs.")
	reg.Counter(dynamic, "Non-literal name defeats the coverage check.")
}
