package eig

import (
	"errors"
	"math"
	"testing"

	"spcg/internal/sparse"
)

func poisson1DEig(n, k int) float64 {
	return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
}

func TestRitzBoundsPoisson(t *testing.T) {
	n := 200
	a := sparse.Poisson1D(n)
	est, err := RitzFromPCG(a, nil, Options{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	trueMin, trueMax := poisson1DEig(n, 1), poisson1DEig(n, n)
	// Ritz values lie inside the spectrum; widened bounds should cover most
	// of it and λmax must be approximated well (Lanczos converges fastest at
	// the extremes).
	if est.LambdaMax < trueMax*0.98 {
		t.Fatalf("λmax estimate %v too small vs true %v", est.LambdaMax, trueMax)
	}
	if est.LambdaMax > trueMax*1.2 {
		t.Fatalf("λmax estimate %v too large vs true %v", est.LambdaMax, trueMax)
	}
	// Ritz values sit inside the true spectrum, so the widened lower bound
	// can only undershoot the smallest Ritz value — never the true λmin by
	// more than the lower safety factor (default 10).
	if est.LambdaMin < trueMin/10-1e-12 {
		t.Fatalf("λmin estimate %v below widened true minimum %v", est.LambdaMin, trueMin/10)
	}
	if est.LambdaMin <= 0 || est.LambdaMin >= est.LambdaMax {
		t.Fatalf("λmin %v out of order with λmax %v", est.LambdaMin, est.LambdaMax)
	}
	// Ritz values sorted ascending and inside Gershgorin bounds.
	glo, ghi := a.Gershgorin()
	for i, v := range est.Ritz {
		if i > 0 && v < est.Ritz[i-1] {
			t.Fatal("Ritz values not sorted")
		}
		if v < glo-1e-9 || v > ghi+1e-9 {
			t.Fatalf("Ritz value %v outside Gershgorin [%v,%v]", v, glo, ghi)
		}
	}
}

func TestRitzWithJacobiPreconditioner(t *testing.T) {
	// For Poisson (constant diagonal 4), M⁻¹A has spectrum A's /4.
	n := 150
	a := sparse.Poisson1D(n)
	applyM := func(dst, src []float64) {
		for i := range src {
			dst[i] = src[i] / 2 // A's diagonal is 2 in 1D
		}
	}
	est, err := RitzFromPCG(a, applyM, Options{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	trueMax := poisson1DEig(n, n) / 2
	if math.Abs(est.LambdaMax-trueMax*1.05) > 0.1*trueMax {
		t.Fatalf("preconditioned λmax %v, want ≈ %v·1.05", est.LambdaMax, trueMax)
	}
}

func TestRitzSmallMatrixExact(t *testing.T) {
	// With Iterations ≥ n, CG-Lanczos reproduces the full spectrum.
	n := 10
	a := sparse.Poisson1D(n)
	est, err := RitzFromPCG(a, nil, Options{Iterations: n})
	if err != nil {
		t.Fatal(err)
	}
	if est.Iterations > n {
		t.Fatalf("ran %d iterations on n=%d", est.Iterations, n)
	}
	for i, v := range est.Ritz {
		// Every Ritz value approximates some eigenvalue closely.
		bestDiff := math.Inf(1)
		for k := 1; k <= n; k++ {
			if d := math.Abs(v - poisson1DEig(n, k)); d < bestDiff {
				bestDiff = d
			}
		}
		if bestDiff > 1e-6 {
			t.Fatalf("Ritz[%d] = %v is %v away from nearest eigenvalue", i, v, bestDiff)
		}
	}
}

func TestRitzBreakdownOnIndefinite(t *testing.T) {
	// A matrix with a negative eigenvalue direction hit immediately:
	// -I makes pᵀAp < 0 at step 0.
	coo := sparse.NewCOO(4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, -1)
	}
	_, err := RitzFromPCG(coo.ToCSR(), nil, Options{Iterations: 5})
	if !errors.Is(err, ErrBreakdown) && err == nil {
		t.Fatalf("expected breakdown, got %v", err)
	}
}

func TestRitzDefaults(t *testing.T) {
	a := sparse.Poisson1D(50)
	est, err := RitzFromPCG(a, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Iterations == 0 || est.Iterations > 20 {
		t.Fatalf("default iterations = %d", est.Iterations)
	}
}

func TestPowerIteration(t *testing.T) {
	n := 100
	a := sparse.Poisson1D(n)
	got := PowerIteration(a, 500)
	want := poisson1DEig(n, n)
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("power iteration %v, want %v", got, want)
	}
	if v := PowerIteration(a, 0); v <= 0 {
		t.Fatalf("default-steps power iteration = %v", v)
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	coo := sparse.NewCOO(3)
	coo.Add(0, 0, 0)
	if v := PowerIteration(coo.ToCSR(), 5); v != 0 {
		t.Fatalf("zero matrix power iteration = %v", v)
	}
}
