package precond

import (
	"fmt"
	"math"
	"sync"

	"spcg/internal/sparse"
)

// IC0 is the zero-fill incomplete Cholesky preconditioner M = L·Lᵀ where L
// has the sparsity pattern of the lower triangle of A. Like SSOR, the
// triangular solves are processor-local in the distributed interpretation.
type IC0 struct {
	n      int
	rowPtr []int // CSR of L (lower triangle incl. diagonal)
	colIdx []int
	val    []float64
	diag   []int     // position of the diagonal entry in each row of L
	y      sync.Pool // per-caller forward-solve vector: Apply is concurrency-safe
}

// NewIC0 computes the IC(0) factorization. Returns an error if a pivot
// becomes non-positive (possible for general SPD matrices; guaranteed safe
// for M-matrices such as the stencil generators).
func NewIC0(a *sparse.CSR) (*IC0, error) {
	n := a.Dim()
	// Extract the lower triangle (columns sorted, diagonal last per row).
	p := &IC0{n: n, rowPtr: make([]int, n+1), diag: make([]int, n)}
	p.y.New = func() any { return make([]float64, n) }
	for i := 0; i < n; i++ {
		hasDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j > i {
				break
			}
			p.colIdx = append(p.colIdx, j)
			p.val = append(p.val, a.Val[k])
			if j == i {
				hasDiag = true
				p.diag[i] = len(p.val) - 1
			}
		}
		if !hasDiag {
			return nil, fmt.Errorf("%w: row %d has no stored diagonal", ErrZeroDiagonal, i)
		}
		p.rowPtr[i+1] = len(p.val)
	}
	// Up-looking IC(0): for each row i, for each k < i in pattern,
	// l_ik = (a_ik − Σ_{j<k} l_ij·l_kj) / l_kk ; l_ii = sqrt(a_ii − Σ l_ij²).
	colPos := make(map[[2]int]int, len(p.val)) // (i,j) → index in val
	for i := 0; i < n; i++ {
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			colPos[[2]int{i, p.colIdx[k]}] = k
		}
	}
	for i := 0; i < n; i++ {
		for kk := p.rowPtr[i]; kk < p.rowPtr[i+1]; kk++ {
			k := p.colIdx[kk]
			if k == i {
				break
			}
			s := p.val[kk]
			// Sparse dot of rows i and k over columns < k.
			for ii := p.rowPtr[i]; ii < kk; ii++ {
				j := p.colIdx[ii]
				if pos, ok := colPos[[2]int{k, j}]; ok {
					s -= p.val[ii] * p.val[pos]
				}
			}
			p.val[kk] = s / p.val[p.diag[k]]
		}
		d := p.val[p.diag[i]]
		for ii := p.rowPtr[i]; ii < p.diag[i]; ii++ {
			d -= p.val[ii] * p.val[ii]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("precond: IC(0) breakdown at row %d (pivot %v)", i, d)
		}
		p.val[p.diag[i]] = math.Sqrt(d)
	}
	return p, nil
}

// Apply solves L·Lᵀ·dst = src.
func (p *IC0) Apply(dst, src []float64) {
	if len(dst) != p.n || len(src) != p.n {
		panic("precond: IC0 Apply dim mismatch")
	}
	y := p.y.Get().([]float64)
	defer p.y.Put(y)
	// Forward L·y = src.
	for i := 0; i < p.n; i++ {
		s := src[i]
		for k := p.rowPtr[i]; k < p.diag[i]; k++ {
			s -= p.val[k] * y[p.colIdx[k]]
		}
		y[i] = s / p.val[p.diag[i]]
	}
	// Backward Lᵀ·dst = y: accumulate column-wise.
	copy(dst, y)
	for i := p.n - 1; i >= 0; i-- {
		dst[i] /= p.val[p.diag[i]]
		xi := dst[i]
		for k := p.rowPtr[i]; k < p.diag[i]; k++ {
			dst[p.colIdx[k]] -= p.val[k] * xi
		}
	}
}

// Dim returns n.
func (p *IC0) Dim() int { return p.n }

// Name returns "ic0".
func (p *IC0) Name() string { return "ic0" }

// Flops counts the two triangular sweeps.
func (p *IC0) Flops() float64 { return 4*float64(len(p.val)) + 2*float64(p.n) }

// HaloExchanges returns 0 (local sweeps).
func (p *IC0) HaloExchanges() int { return 0 }
