package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocfreeConfig targets the allocfree analyzer.
type AllocfreeConfig struct {
	// Packages are the kernel packages to inspect.
	Packages []string
	// FuncPattern is a substring selecting the fused-kernel functions by
	// name ("Fused").
	FuncPattern string
}

// Allocfree keeps the fused cache-blocked kernels allocation-free in their
// loops: no make or append inside any loop of a fused-kernel function.
// These kernels run millions of times per solve; a per-iteration allocation
// would put the garbage collector on the hot path and destroy the measured
// speedups the benchmark gates pin. Scratch space comes from the callers or
// sync.Pool, sized before the loop.
func Allocfree(cfg AllocfreeConfig) *Analyzer {
	pkgs := stringSet(cfg.Packages)
	a := &Analyzer{
		Name: "allocfree",
		Doc:  "no make/append inside loops of fused-kernel functions",
	}
	a.Run = func(p *Pass) {
		if !pkgs[p.Pkg.Types.Path()] {
			return
		}
		for _, f := range p.Pkg.Files {
			if p.Pkg.IsTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !strings.Contains(fd.Name.Name, cfg.FuncPattern) || fd.Body == nil {
					continue
				}
				walkLoopDepth(fd.Body, func(n ast.Node, loopDepth int) {
					if loopDepth == 0 {
						return
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok || (id.Name != "make" && id.Name != "append") {
						return
					}
					if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						p.Reportf(call.Pos(), "%s inside a loop of fused kernel %s; take scratch from the pool before the loop", id.Name, fd.Name.Name)
					}
				})
			}
		}
	}
	return a
}
