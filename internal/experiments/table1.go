package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/perfmodel"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// Table1Row pairs an algorithm's Table 1 formulas with counts measured from
// an instrumented run.
type Table1Row struct {
	perfmodel.Cost
	// MeasuredMV and MeasuredPrec are per-s-steps averages from the run.
	MeasuredMV, MeasuredPrec float64
	// MeasuredReductionsPerS is the measured number of global collectives
	// per s steps.
	MeasuredReductionsPerS float64
}

// RunTable1 prints Table 1 and validates its communication-relevant columns
// against an instrumented solve on a 3D Poisson problem with a Jacobi
// preconditioner and Chebyshev basis (arbitrary-basis column).
func RunTable1(cfg Config, dim int) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 24
	}
	a := sparse.Poisson3D(dim, dim, dim)
	st, err := newSetup(a, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	cl, err := dist.NewCluster(cfg.Machine, 1, a)
	if err != nil {
		// Too few rows for a full node: shrink the virtual node.
		m := cfg.Machine
		m.RanksPerNode = 8
		cl, err = dist.NewCluster(m, 1, a)
		if err != nil {
			return nil, err
		}
	}

	runs := map[perfmodel.Algorithm]solverFn{
		perfmodel.PCG:     solver.PCG,
		perfmodel.SPCGMon: solver.SPCGMon,
		perfmodel.SPCG:    solver.SPCG,
		perfmodel.CAPCG:   solver.CAPCG,
		perfmodel.CAPCG3:  solver.CAPCG3,
	}
	var out []Table1Row
	for _, alg := range perfmodel.Algorithms() {
		cost, err := perfmodel.Table1(alg, cfg.S)
		if err != nil {
			return nil, err
		}
		opts := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
		if alg == perfmodel.PCG || alg == perfmodel.SPCGMon {
			opts.Basis = basis.Monomial
		}
		opts.Tracker = dist.NewTracker(cl)
		_, _, stats := runOne(runs[alg], st, opts)
		row := Table1Row{Cost: cost}
		// Count validation does not need convergence — a partial run (e.g.
		// sPCGmon breaking down at large s) still exhibits the per-s-steps
		// operation pattern.
		if stats != nil && stats.Iterations >= cfg.S {
			perS := float64(cfg.S) / float64(stats.Iterations)
			row.MeasuredMV = float64(stats.MVProducts) * perS
			row.MeasuredPrec = float64(stats.PrecApplies) * perS
			row.MeasuredReductionsPerS = float64(stats.Allreduces) * perS
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTable1 writes the closed-form table with measured validation columns.
func RenderTable1(w io.Writer, rows []Table1Row, s int) {
	fmt.Fprintf(w, "Computational cost per s = %d steps (paper Table 1) with measured validation\n", s)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\t#MV+#prec\tlocal red.\tvec (mon)\t+arb\ttotal mon\ttotal arb\tmeas #MV/s\tmeas #prec/s\tmeas collectives/s")
	val := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%g", v)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%g\t%g\t%s\t%g\t%s\t%.1f\t%.1f\t%.2f\n",
			r.Alg, r.MVAndPrec, r.LocalReductions, r.VectorOpsMonomial,
			val(r.VectorOpsArbitraryExtra), r.TotalMonomial, val(r.TotalArbitrary),
			r.MeasuredMV, r.MeasuredPrec, r.MeasuredReductionsPerS)
	}
	tw.Flush()
}

// ValidateTable1 checks that the measured per-s-steps MV counts and
// collective counts track the closed forms (within the once-per-solve
// initialization slack). It returns an error describing the first mismatch.
func ValidateTable1(rows []Table1Row, s int) error {
	for _, r := range rows {
		if r.MeasuredMV == 0 {
			return fmt.Errorf("experiments: %s produced no measurement", r.Alg)
		}
		slack := 2.0 * float64(s) / 10 // initialization amortized over ≥ 10·s/ s steps
		if math.Abs(r.MeasuredMV-float64(r.MVAndPrec)) > slack+1 {
			return fmt.Errorf("experiments: %s measured %.2f MVs per %d steps, formula says %d", r.Alg, r.MeasuredMV, s, r.MVAndPrec)
		}
		wantRed := float64(perfmodel.GlobalReductionsPerSSteps(r.Alg, s))
		if math.Abs(r.MeasuredReductionsPerS-wantRed) > slack+1 {
			return fmt.Errorf("experiments: %s measured %.2f collectives per %d steps, formula says %g", r.Alg, r.MeasuredReductionsPerS, s, wantRed)
		}
	}
	return nil
}
