// Package spmd is a real (not modeled) single-program-multiple-data runtime:
// P ranks run as goroutines, each owning a contiguous block of matrix rows,
// communicating only through explicit messages — point-to-point halo
// exchanges for SpMV ghost values and tree-free deterministic allreduces for
// inner products. It executes the same block-row distribution that
// internal/dist models, demonstrating that the partition/halo machinery
// computes exactly what the sequential kernels compute.
//
// The runtime is deliberately faithful to MPI programming style: a rank can
// only read values it owns or has received, reductions are collective, and
// forgetting an exchange produces wrong results, not panics.
package spmd

import (
	"fmt"
	"sync"
)

// World coordinates P ranks. Create one per parallel region with NewWorld,
// then Run a rank function on every rank.
type World struct {
	P int

	barrier *barrier
	// reduceBuf[r] holds rank r's contribution to the current allreduce.
	reduceBuf [][]float64
	reduceRes []float64
	// mailboxes[to][from] passes halo payloads; buffered so sends never
	// block (each pair exchanges at most one message per round).
	mailboxes [][]chan []float64
}

// NewWorld creates a world of p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("spmd: world size %d < 1", p))
	}
	w := &World{P: p, barrier: newBarrier(p), reduceBuf: make([][]float64, p)}
	w.mailboxes = make([][]chan []float64, p)
	for to := 0; to < p; to++ {
		w.mailboxes[to] = make([]chan []float64, p)
		for from := 0; from < p; from++ {
			w.mailboxes[to][from] = make(chan []float64, 1)
		}
	}
	return w
}

// Run executes fn on every rank concurrently and waits for all to finish.
func (w *World) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	for id := 0; id < w.P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, W: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one SPMD process.
type Rank struct {
	ID int
	W  *World
}

// Barrier blocks until every rank has reached it.
func (r *Rank) Barrier() { r.W.barrier.wait() }

// Allreduce sums the ranks' local contributions elementwise and returns the
// global result on every rank. The summation is performed in rank order by
// rank 0, so the result is deterministic and identical on all ranks.
// All ranks must pass slices of the same length.
func (r *Rank) Allreduce(local []float64) []float64 {
	w := r.W
	w.reduceBuf[r.ID] = local
	r.Barrier()
	if r.ID == 0 {
		res := make([]float64, len(local))
		for rank := 0; rank < w.P; rank++ {
			contrib := w.reduceBuf[rank]
			if len(contrib) != len(res) {
				panic(fmt.Sprintf("spmd: allreduce length mismatch: rank %d sent %d values, rank 0 sent %d", rank, len(contrib), len(res)))
			}
			for i, v := range contrib {
				res[i] += v
			}
		}
		w.reduceRes = res
	}
	r.Barrier()
	out := w.reduceRes
	r.Barrier() // nobody reuses the buffers until all have read the result
	return out
}

// Send delivers payload to rank `to` (non-blocking; one in-flight message
// per (from,to) pair per communication round).
func (r *Rank) Send(to int, payload []float64) {
	r.W.mailboxes[to][r.ID] <- payload
}

// Recv blocks until the message from rank `from` arrives.
func (r *Rank) Recv(from int) []float64 {
	return <-r.W.mailboxes[r.ID][from]
}

// barrier is a reusable sense-reversing barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
