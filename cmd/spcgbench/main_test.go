package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"spcg/internal/experiments"
)

func TestRunUnknownSubcommand(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"nosuchtable"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), `unknown subcommand "nosuchtable"`) {
		t.Errorf("stderr should name the bad subcommand, got: %s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "usage:") {
		t.Errorf("stderr should include usage, got: %s", errBuf.String())
	}
}

// TestUsageListsEverySubcommand keeps the usage line honest: every
// registered subcommand must be advertised, with no duplicates, and each
// must actually be accepted by the dispatcher.
func TestUsageListsEverySubcommand(t *testing.T) {
	var buf bytes.Buffer
	usage(&buf)
	text := buf.String()
	seen := map[string]bool{}
	for _, cmd := range subcommands {
		if seen[cmd] {
			t.Errorf("subcommand %q registered twice", cmd)
		}
		seen[cmd] = true
		if !strings.Contains(text, cmd) {
			t.Errorf("usage text does not list subcommand %q: %s", cmd, text)
		}
		if !knownCommand(cmd) {
			t.Errorf("registered subcommand %q not accepted by the dispatcher", cmd)
		}
		// A recognized command must get past the unknown-subcommand check:
		// a bogus flag yields a flag-parse failure (exit 2) but never the
		// "unknown subcommand" message.
		var out, errBuf bytes.Buffer
		if code := run([]string{cmd, "-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
			t.Errorf("%s with bad flag: exit %d, want 2", cmd, code)
		}
		if strings.Contains(errBuf.String(), "unknown subcommand") {
			t.Errorf("%s rejected as unknown subcommand", cmd)
		}
	}
	if !seen["tune"] {
		t.Error("tune subcommand missing from the registry")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage:") {
		t.Errorf("stderr should include usage, got: %s", errBuf.String())
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"table1", "-s", "4", "stray"}, &out, &errBuf); code != 2 {
		t.Errorf("stray positional arg: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unexpected arguments") {
		t.Errorf("stderr should flag unexpected arguments, got: %s", errBuf.String())
	}
}

func TestRunBadFlagValue(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"table2", "-only", "nosuchmatrix"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown matrix: exit %d, want 2", code)
	}
}

func TestRunKernelsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("kernels sweep in -short mode")
	}
	outFile := t.TempDir() + "/bench.json"
	var out, errBuf bytes.Buffer
	code := run([]string{"kernels", "-sizes", "2048", "-workersweep", "1,2", "-reps", "1", "-out", outFile}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("kernels smoke: exit %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"gram", "dispatch", "pool beats spawn everywhere"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("kernels output missing %q: %s", want, out.String())
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("-out file: %v", err)
	}
	var res experiments.KernelsResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("-out is not valid JSON: %v", err)
	}
	if len(res.Cases) == 0 {
		t.Error("-out JSON has no cases")
	}
}

func TestRunTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tune sweep in -short mode")
	}
	outFile := t.TempDir() + "/bench_autotune.json"
	var out, errBuf bytes.Buffer
	code := run([]string{"tune", "-matrices", "thermomech_TC", "-scale", "200",
		"-reps", "1", "-probeiters", "20", "-rounds", "2", "-out", outFile}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("tune smoke: exit %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"thermomech_TC", "auto within 10% of best static", "no broken config selected:      true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("tune output missing %q: %s", want, out.String())
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("-out file: %v", err)
	}
	var res experiments.AutotuneResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("-out is not valid JSON: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Winner.Method == "" {
		t.Errorf("-out JSON malformed: %+v", res)
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList(" 1, 2,16 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 16 {
		t.Errorf("parseIntList = %v, %v", got, err)
	}
	if got, err := parseIntList(""); err != nil || got != nil {
		t.Errorf("empty list = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "-3", "x", "1,,2"} {
		if _, err := parseIntList(bad); err == nil {
			t.Errorf("parseIntList(%q) accepted", bad)
		}
	}
}

func TestRunTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 run in -short mode")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"table1", "-s", "4", "-dim", "8"}, &out, &errBuf); code != 0 {
		t.Fatalf("table1 smoke: exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "validation:") {
		t.Errorf("table1 output missing validation line: %s", out.String())
	}
}
