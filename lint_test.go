package spcg

import (
	"testing"

	"spcg/internal/lint"
)

// TestRepoLintClean is the repository lint gate: loading and type-checking
// the whole module and running the first-party analyzer suite
// (internal/lint, same configuration as cmd/spcglint) must produce zero
// diagnostics. CI also runs `go run ./cmd/spcglint ./...`; this test makes
// the invariant part of the ordinary `go test ./...` cycle so a violation
// fails locally before a push.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, pkg := range m.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("typecheck: %v", terr)
		}
	}
	for _, d := range lint.Run(m, lint.DefaultAnalyzers()) {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}
