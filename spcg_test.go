package spcg_test

import (
	"math"
	"testing"

	"spcg"
)

// TestPublicAPIQuickstart exercises the README's quick-start path end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	a := spcg.Poisson3D(12, 12, 12)
	n := a.Dim()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 1 / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	m, err := spcg.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	x, stats, err := spcg.SPCG(a, m, b, spcg.Options{S: 10, Basis: spcg.Chebyshev, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge: %+v", stats)
	}
	var errNorm float64
	for i := range x {
		d := x[i] - xTrue[i]
		errNorm += d * d
	}
	if math.Sqrt(errNorm) > 1e-7 {
		t.Fatalf("solution error %v", math.Sqrt(errNorm))
	}
}

// TestPublicAPITrackedRun exercises the cost-model path through the facade.
func TestPublicAPITrackedRun(t *testing.T) {
	a := spcg.Poisson2D(24, 24)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	machine := spcg.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := spcg.NewCluster(machine, 2, a)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := spcg.PCG(a, nil, b, spcg.Options{Tracker: spcg.NewTracker(cl)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimTime <= 0 {
		t.Fatal("no simulated time through the public API")
	}
}

// TestPublicAPISpectrum exercises spectral estimation + explicit basis use.
func TestPublicAPISpectrum(t *testing.T) {
	a := spcg.Poisson1D(200)
	est, err := spcg.EstimateSpectrum(a, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !(est.LambdaMin > 0 && est.LambdaMin < est.LambdaMax) {
		t.Fatalf("bad estimate: [%v, %v]", est.LambdaMin, est.LambdaMax)
	}
	b := make([]float64, a.Dim())
	b[0] = 1
	_, stats, err := spcg.CAPCG(a, nil, b, spcg.Options{S: 5, Basis: spcg.Newton, Spectrum: est})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("Newton-basis CA-PCG failed: %+v", stats.Breakdown)
	}
}

// TestPublicAPIDistributed exercises the SPMD facade.
func TestPublicAPIDistributed(t *testing.T) {
	a := spcg.Poisson2D(20, 20)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	res, err := spcg.DistributedPCG(a, b, 4, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("distributed PCG did not converge")
	}
	// Verify against the operator directly.
	ax := make([]float64, a.Dim())
	a.MulVec(ax, res.X)
	var num, den float64
	for i := range ax {
		d := ax[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if math.Sqrt(num/den) > 1e-8 {
		t.Fatalf("residual %v", math.Sqrt(num/den))
	}
}
