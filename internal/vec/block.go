package vec

import "fmt"

// Block is an n×s tall-skinny multivector stored as s contiguous columns of
// length n. The s-step basis matrices S⁽ᵏ⁾, U⁽ᵏ⁾ and the search-direction
// blocks P⁽ᵏ⁾, AP⁽ᵏ⁾ are Blocks. Column storage keeps the matrix powers
// kernel (which appends one column at a time) allocation-free after setup and
// makes "apply an s×s coefficient matrix from the right" a sequence of fused
// axpys — the BLAS3-style operation the paper credits sPCG's performance to.
type Block struct {
	N    int
	Cols [][]float64
}

// NewBlock allocates an n×s block of zeros backed by a single allocation.
func NewBlock(n, s int) *Block {
	if n < 0 || s < 0 {
		panic(fmt.Sprintf("vec: NewBlock invalid shape %d×%d", n, s))
	}
	backing := make([]float64, n*s)
	cols := make([][]float64, s)
	for j := range cols {
		cols[j] = backing[j*n : (j+1)*n : (j+1)*n]
	}
	return &Block{N: n, Cols: cols}
}

// S returns the number of columns.
func (b *Block) S() int { return len(b.Cols) }

// Col returns column j (a view, not a copy).
func (b *Block) Col(j int) []float64 { return b.Cols[j] }

// Zero clears all columns.
func (b *Block) Zero() {
	for _, c := range b.Cols {
		Zero(c)
	}
}

// CopyFrom copies the columns of src into b. Shapes must match.
func (b *Block) CopyFrom(src *Block) {
	if b.N != src.N || b.S() != src.S() {
		panic("vec: Block CopyFrom shape mismatch")
	}
	for j, c := range src.Cols {
		copy(b.Cols[j], c)
	}
}

// Clone returns a deep copy of b.
func (b *Block) Clone() *Block {
	nb := NewBlock(b.N, b.S())
	nb.CopyFrom(b)
	return nb
}

// View returns a Block sharing columns lo..hi (half-open) of b.
func (b *Block) View(lo, hi int) *Block {
	if lo < 0 || hi > b.S() || lo > hi {
		panic(fmt.Sprintf("vec: Block View [%d,%d) out of range 0..%d", lo, hi, b.S()))
	}
	return &Block{N: b.N, Cols: b.Cols[lo:hi]}
}

// MulVec computes dst = X·c where X is the n×s block and c has length s:
// a tall-skinny GEMV, dst_i = Σ_j X_{ij} c_j. dst must not alias a column.
func (b *Block) MulVec(dst []float64, c []float64) {
	if len(c) != b.S() {
		panic(fmt.Sprintf("vec: Block MulVec coefficient length %d != %d columns", len(c), b.S()))
	}
	if len(dst) != b.N {
		panic("vec: Block MulVec dst length mismatch")
	}
	Zero(dst)
	for j, col := range b.Cols {
		Axpy(c[j], col, dst)
	}
}

// MulVecAdd computes dst += X·c.
func (b *Block) MulVecAdd(dst []float64, c []float64) {
	if len(c) != b.S() {
		panic("vec: Block MulVecAdd coefficient length mismatch")
	}
	for j, col := range b.Cols {
		Axpy(c[j], col, dst)
	}
}

// MulVecSub computes dst -= X·c.
func (b *Block) MulVecSub(dst []float64, c []float64) {
	if len(c) != b.S() {
		panic("vec: Block MulVecSub coefficient length mismatch")
	}
	for j, col := range b.Cols {
		Axpy(-c[j], col, dst)
	}
}

// Gram computes the sᵃ×sᵇ matrix Xᵀ·Y (row-major, row i = column i of X
// against all columns of Y). This is the local part of the s-step methods'
// single global reduction.
func Gram(x, y *Block) []float64 {
	if x.N != y.N {
		panic("vec: Gram row-count mismatch")
	}
	sa, sb := x.S(), y.S()
	out := make([]float64, sa*sb)
	for i := 0; i < sa; i++ {
		xi := x.Cols[i]
		for j := 0; j < sb; j++ {
			out[i*sb+j] = Dot(xi, y.Cols[j])
		}
	}
	return out
}

// GramVec computes the length-s vector Xᵀ·v.
func GramVec(x *Block, v []float64) []float64 {
	out := make([]float64, x.S())
	for i, col := range x.Cols {
		out[i] = Dot(col, v)
	}
	return out
}

// AddMul computes dst = Y + X·C where C is sₓ×s_dst row-major (C[i*s+j]
// multiplies column i of X into column j of dst): the search-direction update
// P⁽ᵏ⁾ = U⁽ᵏ⁾ + P⁽ᵏ⁻¹⁾B⁽ᵏ⁾ of Algorithms 2 and 5. dst must not share
// columns with x; dst may equal y.
func AddMul(dst, y, x *Block, c []float64) {
	sx, sd := x.S(), dst.S()
	if y.S() != sd || len(c) != sx*sd || y.N != x.N || dst.N != x.N {
		panic("vec: AddMul shape mismatch")
	}
	for j := 0; j < sd; j++ {
		d, yc := dst.Cols[j], y.Cols[j]
		if &d[0] != &yc[0] {
			copy(d, yc)
		}
		for i := 0; i < sx; i++ {
			Axpy(c[i*sd+j], x.Cols[i], d)
		}
	}
}

// Mul computes dst = X·C (as AddMul with Y = 0).
func Mul(dst, x *Block, c []float64) {
	sx, sd := x.S(), dst.S()
	if len(c) != sx*sd || dst.N != x.N {
		panic("vec: Mul shape mismatch")
	}
	for j := 0; j < sd; j++ {
		d := dst.Cols[j]
		Zero(d)
		for i := 0; i < sx; i++ {
			Axpy(c[i*sd+j], x.Cols[i], d)
		}
	}
}

// GramF32 is Gram with float32 accumulation: the mixed-precision variant
// studied by Carson, Gergelits & Yamazaki (paper ref. [5]) computes the
// s-step Gram matrices in lower precision to cut reduction bandwidth. The
// result is returned in float64 but carries single-precision rounding.
func GramF32(x, y *Block) []float64 {
	if x.N != y.N {
		panic("vec: GramF32 row-count mismatch")
	}
	sa, sb := x.S(), y.S()
	out := make([]float64, sa*sb)
	for i := 0; i < sa; i++ {
		xi := x.Cols[i]
		for j := 0; j < sb; j++ {
			yj := y.Cols[j]
			var acc float32
			for k := range xi {
				acc += float32(xi[k]) * float32(yj[k])
			}
			out[i*sb+j] = float64(acc)
		}
	}
	return out
}
