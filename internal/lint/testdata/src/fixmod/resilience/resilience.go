// Package resilience is a stub of the repo's panic guard, just enough for
// the safego fixtures to reference by import path.
package resilience

// Safe runs fn; the fixtures only need the call shape, not the recover.
func Safe(fn func()) error {
	fn()
	return nil
}
