package service

import (
	"context"
	"testing"
	"time"
)

// TestSubmitRequestIDDedup checks the idempotency contract gateway retries
// rely on: resubmitting a request_id returns the existing job — before and
// after it completes — and never runs a second solve.
func TestSubmitRequestIDDedup(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	req := SolveRequest{Matrix: "poisson2d:12", Method: "pcg", Async: true, RequestID: "dup-key"}
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if j1 != j2 {
		t.Fatalf("resubmission created a new job: %s vs %s", j1.status().ID, j2.status().ID)
	}
	<-j1.done
	// Dedup must survive completion while the job is retained.
	j3, err := s.Submit(req)
	if err != nil {
		t.Fatalf("post-completion resubmit: %v", err)
	}
	if j3 != j1 {
		t.Fatalf("post-completion resubmission re-ran the solve: %s vs %s", j3.status().ID, j1.status().ID)
	}
	if got := s.met.dedupHits.Value(); got != 2 {
		t.Fatalf("spcgd_dedup_hits_total = %d, want 2", got)
	}
	// A different key is a different job.
	other, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg", Async: true, RequestID: "other-key"})
	if err != nil {
		t.Fatalf("other submit: %v", err)
	}
	if other == j1 {
		t.Fatalf("distinct request_ids collapsed into one job")
	}
}
