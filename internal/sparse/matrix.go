package sparse

import "spcg/internal/vec"

// Matrix is the operator contract the solvers' hot path needs: sequential
// and pool-parallel SpMV, the batched block variants, and the fused
// basis-step kernel. *CSR and *SELL both implement it, so a solve can run
// on whichever storage the format selector picked without the solver
// knowing. All implementations must be safe for concurrent kernel calls on
// an immutable matrix and bitwise deterministic across worker counts.
type Matrix interface {
	Dim() int
	NNZ() int
	MulVec(dst, x []float64)
	MulVecPar(dst, x []float64)
	MulBlock(dst, x *vec.Block)
	MulBlockPar(dst, x *vec.Block)
	FusedBasisStepPar(sNext, u, sCur, sPrev []float64, theta, mu, gamma float64, dinv, uNext []float64)
}

var (
	_ Matrix = (*CSR)(nil)
	_ Matrix = (*SELL)(nil)
)
