// Package spcg is a pure-Go implementation of s-step Preconditioned
// Conjugate Gradient methods, reproducing "Numerical Properties and
// Scalability of s-Step Preconditioned Conjugate Gradient Methods"
// (Mayer & Gansterer, SC 2025 ScalAH).
//
// It provides standard PCG, the three-term PCG3 baseline, and the four
// s-step variants the paper compares — sPCGmon (Chronopoulos & Gear's
// original monomial-basis method), sPCG (the paper's generalization to
// arbitrary basis types), CA-PCG (Toledo) and CA-PCG3 (Hoemmen) — together
// with the substrates they need: polynomial bases (monomial, Newton,
// Chebyshev), the matrix powers kernel, Jacobi/Chebyshev/block-Jacobi/SSOR/
// IC(0) preconditioners, spectral estimation, sparse matrix generators, and
// a virtual-cluster cost model that reproduces the paper's scalability
// experiments without MPI.
//
// Quick start:
//
//	a := spcg.Poisson3D(32, 32, 32)
//	b := make([]float64, a.Dim())
//	for i := range b { b[i] = 1 }
//	m, _ := spcg.NewJacobi(a)
//	x, stats, err := spcg.SPCG(a, m, b, spcg.Options{S: 10, Basis: spcg.Chebyshev})
//
// The internal packages hold the implementation; this package is the stable
// surface examples and downstream users build against.
package spcg

import (
	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/eig"
	"spcg/internal/fault"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/spmd"
	"spcg/internal/tune"
	"spcg/internal/vec"
)

// Matrix is a square sparse matrix in CSR form.
type Matrix = sparse.CSR

// Options configures a solver run; see solver.Options for field docs.
type Options = solver.Options

// Stats reports what a run did; see solver.Stats.
type Stats = solver.Stats

// Preconditioner is a fixed SPD operator M⁻¹.
type Preconditioner = precond.Interface

// BasisType selects the s-step polynomial basis.
type BasisType = basis.Type

// Basis types for Options.Basis.
const (
	Monomial  = basis.Monomial
	Newton    = basis.Newton
	Chebyshev = basis.Chebyshev
)

// Convergence criteria for Options.Criterion.
const (
	TrueResidual2Norm      = solver.TrueResidual2Norm
	RecursiveResidual2Norm = solver.RecursiveResidual2Norm
	RecursiveResidualMNorm = solver.RecursiveResidualMNorm
)

// Solvers. Each solves A·x = b and returns the solution, run statistics and
// an error for invalid inputs (numerical breakdown is reported in Stats, not
// as an error).
var (
	// PCG is standard preconditioned CG (paper Alg. 1).
	PCG = solver.PCG
	// PCG3 is the three-term recurrence variant (Rutishauser).
	PCG3 = solver.PCG3
	// SPCGMon is the original monomial-basis s-step PCG (paper Alg. 2).
	SPCGMon = solver.SPCGMon
	// SPCG is the paper's contribution: s-step PCG with arbitrary basis
	// types (paper Alg. 5+6).
	SPCG = solver.SPCG
	// CAPCG is Toledo's communication-avoiding PCG (paper Alg. 3).
	CAPCG = solver.CAPCG
	// CAPCG3 is Hoemmen's communication-avoiding three-term PCG (Alg. 4).
	CAPCG3 = solver.CAPCG3
	// SPCGAdaptive is SPCG with an adaptive block size: s halves on
	// breakdown/stagnation down to plain PCG (extension; see DESIGN.md).
	SPCGAdaptive = solver.SPCGAdaptive
)

// Matrix generators.
var (
	// Poisson1D, Poisson2D, Poisson3D are Dirichlet Laplacians; Poisson3D
	// is the paper's Figure 1 problem (256³ there).
	Poisson1D = sparse.Poisson1D
	Poisson2D = sparse.Poisson2D
	Poisson3D = sparse.Poisson3D
	// VarCoeff2D / VarCoeff3D are variable-coefficient diffusion operators
	// with a conditioning dial.
	VarCoeff2D = sparse.VarCoeff2D
	VarCoeff3D = sparse.VarCoeff3D
	// ReadMatrixMarket and WriteMatrixMarket exchange MatrixMarket files.
	ReadMatrixMarket  = sparse.ReadMatrixMarket
	WriteMatrixMarket = sparse.WriteMatrixMarket
)

// Preconditioners.
var (
	// NewJacobi is the diagonal preconditioner (paper Table 3 / Fig. 1).
	NewJacobi = precond.NewJacobi
	// NewChebyshevPrec is the degree-d polynomial preconditioner (paper
	// Tables 2–3 use degree 3).
	NewChebyshevPrec = precond.NewChebyshev
	// NewBlockJacobi, NewSSOR, NewIC0 are additional preconditioners.
	NewBlockJacobi = precond.NewBlockJacobi
	NewSSOR        = precond.NewSSOR
	NewIC0         = precond.NewIC0
	// NewIdentity is the trivial preconditioner.
	NewIdentity = precond.NewIdentity
)

// EstimateSpectrum runs k PCG iterations to estimate the spectrum of M⁻¹A
// (Ritz values plus widened bounds), as the paper does for the Chebyshev
// basis/preconditioner and Newton shifts. applyM may be nil for M = I.
func EstimateSpectrum(a *Matrix, applyM func(dst, src []float64), iterations int) (*eig.Estimate, error) {
	return eig.RitzFromPCG(a, applyM, eig.Options{Iterations: iterations})
}

// Cluster models a virtual distributed machine bound to a matrix.
type Cluster = dist.Cluster

// Machine describes modeled cluster hardware.
type Machine = dist.Machine

// Tracker charges solver events to a cluster's cost model; pass one in
// Options.Tracker to obtain Stats.SimTime.
type Tracker = dist.Tracker

// DefaultMachine returns the calibration used for the paper's experiments
// (128 ranks/node).
var DefaultMachine = dist.DefaultMachine

// NewCluster builds a virtual cluster of the given node count for a matrix.
var NewCluster = dist.NewCluster

// NewTracker binds a cost tracker to a cluster.
var NewTracker = dist.NewTracker

// DistributedPCG runs Jacobi-preconditioned CG on p real SPMD goroutine
// ranks with explicit halo exchanges and collectives (internal/spmd): the
// executable counterpart of the modeled cluster.
var DistributedPCG = spmd.PCGJacobi

// DistributedSPCG runs the paper's sPCG on p real SPMD ranks (Jacobi
// preconditioner, explicit basis parameters).
var DistributedSPCG = spmd.SPCGJacobi

// SPMDResult reports a distributed solve.
type SPMDResult = spmd.Result

// FaultInjector produces seeded, reproducible faults: silent data corruption
// of SpMV outputs or state vectors, dropped point-to-point messages, and
// failed collective attempts. Pass one in Options.Injector to attack a solver
// run and set Options.DetectEvery to enable detection + rollback recovery.
// A nil *FaultInjector injects nothing.
type FaultInjector = fault.Injector

// FaultConfig selects which faults a FaultInjector produces; the zero value
// injects nothing.
type FaultConfig = fault.Config

// FaultCounts reports what an injector actually injected.
type FaultCounts = fault.Counts

// NewFaultInjector builds an injector whose whole fault stream is determined
// by the seed.
var NewFaultInjector = fault.New

// FaultModel adds transient communication failures and stragglers to a
// modeled Machine (Machine.Faults); retries are charged as timeout +
// exponential backoff and reported in Stats.RetriedMessages. The zero value
// is fault-free.
type FaultModel = dist.FaultModel

// PipelinedPCG is the communication-hiding pipelined CG of Ghysels &
// Vanroose — the method class the paper defers comparing against; see
// experiments.RunPipeline for that comparison (extension; DESIGN.md).
var PipelinedPCG = solver.PipelinedPCG

// DeflatedPCG is PCG with subspace deflation (paper ref. [4]): searching
// A-orthogonally to the given block removes its spectrum from the effective
// condition number (extension; DESIGN.md).
var DeflatedPCG = solver.DeflatedPCG

// BatchPCG solves A·X = B for k right-hand sides in lockstep: each column
// follows the exact standard-PCG recurrence, but the k SpMVs of every
// iteration run as one block sweep over A. Used by the solve service to
// coalesce concurrent same-matrix requests (internal/service).
var BatchPCG = solver.BatchPCG

// ErrCancelled is returned (wrapped) by every solver when Options.Cancel
// closes before convergence; the partial solution and Stats are still
// returned alongside it.
var ErrCancelled = solver.ErrCancelled

// ErrBreakdown tags Stats.Breakdown (wrapped) when an s-step solve hits a
// singular Gram system or a non-positive curvature — the numerical failure
// mode the paper's s-halving cascade (SPCGAdaptive) and the solve service's
// circuit breakers mitigate. Test with errors.Is(stats.Breakdown,
// spcg.ErrBreakdown).
var ErrBreakdown = solver.ErrBreakdown

// NewBlockVector allocates an n×k multivector, e.g. for deflation subspaces.
var NewBlockVector = vec.NewBlock

// BlockVector is an n×k tall-skinny multivector (columns of length n).
type BlockVector = vec.Block

// Lanczos computes k extreme Ritz pairs of A with full reorthogonalization;
// pair Vectors with DeflatedPCG to deflate the captured spectrum.
var Lanczos = eig.Lanczos

// RitzPairs holds approximate eigenpairs from Lanczos.
type RitzPairs = eig.RitzPairs

// Tracer records timestamped phase spans (basis build, Gram, block update,
// preconditioner apply, collectives, halo exchanges, …) in a fixed-size ring.
// Pass one in Options.Trace to obtain Stats.Phases, a per-phase breakdown of
// a solve mirroring the paper's Table 3. A nil *Tracer records nothing and
// costs only a branch per instrumented operation, so instrumentation is
// pay-for-use. Distinct from Tracker, which charges the modeled cost of a
// virtual cluster; a Tracer measures real wall time on this machine.
type Tracer = obs.Tracer

// NewPhaseTracer allocates a Tracer with the given ring capacity (<= 0 means
// obs.DefaultRingCapacity). Per-phase aggregates are exact even after the
// ring wraps; only individual spans are dropped.
var NewPhaseTracer = obs.New

// PhaseStat is one row of a phase breakdown: a phase name with its span
// count, total seconds, and summed payload (e.g. values reduced per
// collective); see Stats.Phases.
type PhaseStat = obs.PhaseStat

// PhaseBreakdown is a full per-solve phase report with retained spans and
// drop counts; obtain one from Tracer.Breakdown and render it with
// Breakdown.Render.
type PhaseBreakdown = obs.Breakdown

// MetricsRegistry is a typed counter/gauge/histogram registry with Prometheus
// text exposition (obs.Registry); the solve service exposes one at /metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// TuneCandidate is one autotuning configuration: a solver method with its
// block size s, basis and preconditioner spec (internal/tune). The solve
// service's method:"auto" resolves to one of these.
type TuneCandidate = tune.Candidate

// TuneDecision is a tuned verdict for one matrix fingerprint: the winning
// candidate, the ranked fallback list and the full trial history.
type TuneDecision = tune.Decision

// TuneStore is the LRU-bounded, atomically-persisted decision store backing
// method:"auto" across daemon restarts (docs/TUNING.md).
type TuneStore = tune.Store

// OpenTuneStore opens (or creates) a tune store at path with the given entry
// bound; an empty path yields a memory-only store.
var OpenTuneStore = tune.OpenStore
