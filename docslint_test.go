package spcg

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// mdLink matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use inline
// links throughout.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdInlineLink matches a full inline link for stripping down to its text.
var mdInlineLink = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// TestDocsRelativeLinks walks every tracked markdown file and asserts that
// each relative link target exists on disk — and that every #fragment, pure
// (#section) or cross-file (file.md#section), names a real heading in its
// target, using GitHub's anchor-slug algorithm. Docs cross-references can't
// silently rot when files move or sections are renamed.
func TestDocsRelativeLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if len(files) < 10 {
		t.Fatalf("found only %d markdown files — test is not running from the repo root", len(files))
	}
	// anchorsOf lazily computes each markdown file's heading-anchor set.
	anchorCache := make(map[string]map[string]bool)
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchorCache[path]; ok {
			return a, nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := headingAnchors(string(body))
		anchorCache[path] = a
		return a, nil
	}
	checkFragment := func(docFile, link, targetPath, frag string) {
		anchors, err := anchorsOf(targetPath)
		if err != nil {
			t.Errorf("%s: link %q: cannot read target %s: %v", docFile, link, targetPath, err)
			return
		}
		if !anchors[frag] {
			t.Errorf("%s: link %q points at missing anchor #%s in %s", docFile, link, frag, targetPath)
		}
	}
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if frag, ok := strings.CutPrefix(target, "#"); ok {
				checkFragment(f, m[1], f, frag)
				continue
			}
			target, frag, hasFrag := strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
				continue
			}
			if hasFrag && strings.HasSuffix(resolved, ".md") {
				checkFragment(f, m[1], resolved, frag)
			}
		}
	}
}

// headingAnchors returns the anchor slugs of every ATX heading in a markdown
// body, the way GitHub generates them: lowercase, punctuation stripped,
// spaces to hyphens, repeated slugs deduplicated with -1, -2, … suffixes.
// Headings inside fenced code blocks (``` or ~~~) are ignored, so shell
// comments in examples don't masquerade as sections.
func headingAnchors(body string) map[string]bool {
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(body, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		level := len(line) - len(strings.TrimLeft(line, "#"))
		rest := line[level:]
		if level > 6 || (rest != "" && !strings.HasPrefix(rest, " ")) {
			continue // not a heading (e.g. #!/bin/sh outside a fence)
		}
		text := strings.TrimSpace(rest)
		text = mdInlineLink.ReplaceAllString(text, "$1") // keep link text
		text = strings.ReplaceAll(text, "`", "")
		slug := githubSlug(text)
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors
}

// TestHeadingAnchors pins the slug algorithm against GitHub's behavior:
// punctuation stripped, spaces to hyphens (each space independently),
// backticks removed, duplicates suffixed, fenced blocks ignored.
func TestHeadingAnchors(t *testing.T) {
	body := "# API & Serving Guide\n" +
		"\n```sh\n# just a shell comment\n```\n" +
		"## The `spcglint` tool\n" +
		"## Repeat\n" +
		"## Repeat\n" +
		"#not-a-heading\n"
	anchors := headingAnchors(body)
	for _, want := range []string{"api--serving-guide", "the-spcglint-tool", "repeat", "repeat-1"} {
		if !anchors[want] {
			t.Errorf("anchor %q missing from %v", want, anchors)
		}
	}
	for _, bad := range []string{"just-a-shell-comment", "not-a-heading"} {
		if anchors[bad] {
			t.Errorf("anchor %q should not exist (fenced or malformed heading)", bad)
		}
	}
}

// githubSlug lowercases a heading and keeps letters, digits, hyphens and
// underscores, mapping spaces to hyphens — GitHub's anchor algorithm.
func githubSlug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
