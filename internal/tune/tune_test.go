package tune

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spcg/internal/sparse"
)

// TestSeedWellConditioned: on a benign operator nothing is pruned, the plan
// is capped, and the PCG baseline survives.
func TestSeedWellConditioned(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	plan, err := Seed(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cond <= 0 {
		t.Errorf("no condition estimate: %v", plan.Cond)
	}
	if len(plan.Pruned) != 0 {
		t.Errorf("benign operator pruned candidates: %+v", plan.Pruned)
	}
	cfg := Config{}.withDefaults()
	if len(plan.Candidates) == 0 || len(plan.Candidates) > cfg.MaxCandidates+1 {
		t.Fatalf("plan size %d outside (0, %d]", len(plan.Candidates), cfg.MaxCandidates+1)
	}
	hasPCG := false
	for _, c := range plan.Candidates {
		if c.Method == "pcg" {
			hasPCG = true
		}
	}
	if !hasPCG {
		t.Errorf("PCG baseline missing from plan: %v", plan.Candidates)
	}
	if plan.Fingerprint != a.Fingerprint() {
		t.Error("plan fingerprint does not match the matrix")
	}
}

// TestSeedPrunesMonomialWhenIllConditioned: a strongly anisotropic operator
// pushes the κ estimate past the cutoff, so monomial at large s is ruled out
// statically — the paper's basis-conditioning result as a planning rule.
func TestSeedPrunesMonomialWhenIllConditioned(t *testing.T) {
	a := sparse.Anisotropic2D(24, 24, 1e-3)
	// Force the gate regardless of probe noise on a small operator.
	plan, err := Seed(a, Config{MonomialCondCutoff: 1, MonomialMaxS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pruned) == 0 {
		t.Fatalf("expected monomial-at-large-s pruning (cond estimate %.3g)", plan.Cond)
	}
	for _, p := range plan.Pruned {
		if p.Candidate.Basis != "monomial" || p.Candidate.S <= 4 {
			t.Errorf("pruned a non-fragile candidate: %+v", p)
		}
	}
	for _, c := range plan.Candidates {
		if c.Basis == "monomial" && c.S > 4 {
			t.Errorf("fragile candidate survived pruning: %v", c)
		}
	}
}

// fakeRunner scripts outcomes per method name.
type fakeRunner struct {
	outcomes map[string]Outcome
	probes   int
}

func (f *fakeRunner) Probe(c Candidate, maxIters int, tol float64) Outcome {
	f.probes++
	if o, ok := f.outcomes[c.Method]; ok {
		return o
	}
	return Outcome{Iterations: maxIters, Relative: 0.5, ElapsedMS: 10}
}

// TestRunEliminatesBreakdowns: a candidate that broke down in trials can
// never be the winner nor appear in the ranked fallback list, regardless of
// how fast it looked.
func TestRunEliminatesBreakdowns(t *testing.T) {
	plan := &Plan{
		Fingerprint: 42,
		Candidates: []Candidate{
			{Method: "spcg", S: 16, Basis: "monomial", Precond: "jacobi"},
			{Method: "capcg", S: 8, Basis: "chebyshev", Precond: "jacobi"},
			{Method: "pcg", Precond: "jacobi"},
		},
	}
	r := &fakeRunner{outcomes: map[string]Outcome{
		// Fastest on paper, but it broke down: must be eliminated.
		"spcg":  {Iterations: 3, Relative: 1e-12, ElapsedMS: 0.1, Breakdown: "gram matrix numerically rank-deficient"},
		"capcg": {Iterations: 40, Relative: 1e-6, ElapsedMS: 5},
		"pcg":   {Iterations: 40, Relative: 1e-3, ElapsedMS: 20},
	}}
	d, err := Run(plan, r, Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Winner.Method != "capcg" {
		t.Errorf("winner = %v, want capcg", d.Winner)
	}
	for _, rc := range d.Ranked {
		if rc.Candidate.Method == "spcg" {
			t.Errorf("broken-down candidate in ranked list: %+v", d.Ranked)
		}
	}
	found := false
	for _, tr := range d.Trials {
		if tr.Candidate.Method == "spcg" {
			if tr.Eliminated == "" {
				t.Error("breakdown trial not marked eliminated")
			}
			found = true
		}
	}
	if !found {
		t.Error("no trial recorded for the broken candidate")
	}
	if d.Fingerprint != FpString(42) {
		t.Errorf("decision fingerprint %q", d.Fingerprint)
	}
}

// TestRunAllEliminated: when everything dies the runner reports an error
// rather than inventing a winner.
func TestRunAllEliminated(t *testing.T) {
	plan := &Plan{Candidates: []Candidate{{Method: "spcg", S: 8, Basis: "monomial", Precond: "jacobi"}}}
	r := &fakeRunner{outcomes: map[string]Outcome{
		"spcg": {Breakdown: "non-positive curvature"},
	}}
	if _, err := Run(plan, r, Config{}); err == nil {
		t.Fatal("Run returned a winner from an all-eliminated field")
	}
}

// TestRunSuccessiveHalving: the field shrinks by half each round and the cap
// quadruples, so later rounds spend their budget on promising candidates.
func TestRunSuccessiveHalving(t *testing.T) {
	plan := &Plan{Candidates: []Candidate{
		{Method: "pcg", Precond: "jacobi"},
		{Method: "spcg", S: 4, Basis: "chebyshev", Precond: "jacobi"},
		{Method: "capcg", S: 4, Basis: "chebyshev", Precond: "jacobi"},
		{Method: "capcg3", S: 4, Basis: "chebyshev", Precond: "jacobi"},
	}}
	r := &fakeRunner{outcomes: map[string]Outcome{
		"pcg":    {Iterations: 40, Relative: 1e-2, ElapsedMS: 40},
		"spcg":   {Iterations: 40, Relative: 1e-8, ElapsedMS: 4},
		"capcg":  {Iterations: 40, Relative: 1e-6, ElapsedMS: 8},
		"capcg3": {Iterations: 40, Relative: 1e-4, ElapsedMS: 30},
	}}
	d, err := Run(plan, r, Config{Rounds: 3, ProbeIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: 4 probes; round 1: top 2; round 2: top 1. 7 total.
	if r.probes != 7 {
		t.Errorf("probes = %d, want 7 (4+2+1)", r.probes)
	}
	if d.Winner.Method != "spcg" {
		t.Errorf("winner = %v, want spcg", d.Winner)
	}
	caps := map[int]int{}
	for _, tr := range d.Trials {
		caps[tr.Round] = tr.IterCap
	}
	if caps[0] != 40 || caps[1] != 160 || caps[2] != 640 {
		t.Errorf("iteration caps per round = %v, want 40/160/640", caps)
	}
}

// TestDirectRunnerProbe: a real probe on a small SPD system converges and
// reports sane numbers; an unknown method errors without panicking.
func TestDirectRunnerProbe(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	r := &DirectRunner{A: a}
	o := r.Probe(Candidate{Method: "pcg", Precond: "jacobi"}, 400, 1e-8)
	if o.Err != "" || o.Breakdown != "" {
		t.Fatalf("probe failed: %+v", o)
	}
	if !o.Converged || o.Relative > 1e-8 || o.Iterations == 0 {
		t.Errorf("probe did not converge: %+v", o)
	}
	o = r.Probe(Candidate{Method: "spcg", S: 4, Basis: "chebyshev", Precond: "jacobi"}, 400, 1e-8)
	if o.Err != "" || o.Breakdown != "" || !o.Converged {
		t.Errorf("spcg probe: %+v", o)
	}
	if o = r.Probe(Candidate{Method: "nope", Precond: "jacobi"}, 10, 1e-8); o.Err == "" {
		t.Error("unknown method did not error")
	}
	if o = r.Probe(Candidate{Method: "pcg", Precond: "bogus"}, 10, 1e-8); o.Err == "" {
		t.Error("unknown preconditioner did not error")
	}
}

// TestStoreRoundTrip: decisions survive a close/reopen cycle byte-exactly
// enough to serve (winner, ranking, source), and the file carries the
// schema version.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	st, err := OpenStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := &Decision{
		Fingerprint: FpString(7),
		Matrix:      "poisson2d:16",
		Winner:      Candidate{Method: "spcg", S: 8, Basis: "chebyshev", Precond: "jacobi"},
		Ranked: []RankedCandidate{
			{Candidate: Candidate{Method: "spcg", S: 8, Basis: "chebyshev", Precond: "jacobi"}, Score: 1.5},
			{Candidate: Candidate{Method: "pcg", Precond: "jacobi"}, Score: 9.0},
		},
		Source: "tuned",
	}
	if err := st.Put(d); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Get(7)
	if !ok {
		t.Fatal("decision lost across reopen")
	}
	if got.Winner != d.Winner || got.Source != "tuned" || len(got.Ranked) != 2 {
		t.Errorf("reloaded decision differs: %+v", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Errorf("store file missing schema version: %s", data)
	}
	if !strings.Contains(string(data), FpString(7)) {
		t.Errorf("store file missing hex fingerprint key: %s", data)
	}
}

// TestStoreVersionMismatch: an unknown schema version is a hard error, not a
// silent wipe.
func TestStoreVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, 8); err == nil {
		t.Fatal("OpenStore accepted an unknown schema version")
	}
	if err := os.WriteFile(path, []byte(`{broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, 8); err == nil {
		t.Fatal("OpenStore accepted malformed JSON")
	}
}

// TestStoreLRUEviction: the entry bound holds and the least recently used
// decision goes first.
func TestStoreLRUEviction(t *testing.T) {
	st, err := OpenStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	put := func(fp uint64, lastUsed int64) {
		t.Helper()
		if err := st.Put(&Decision{Fingerprint: FpString(fp), Winner: Candidate{Method: "pcg", Precond: "jacobi"}, LastUsedUnix: lastUsed}); err != nil {
			t.Fatal(err)
		}
	}
	put(1, 100)
	put(2, 200)
	put(3, 300) // evicts fp 1
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if _, ok := st.Get(1); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := st.Get(2); !ok {
		t.Error("recent entry evicted")
	}
	if _, ok := st.Get(3); !ok {
		t.Error("newest entry evicted")
	}
}

// TestStoreMemoryOnly: an empty path persists nothing but otherwise works.
func TestStoreMemoryOnly(t *testing.T) {
	st, err := OpenStore("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Decision{Fingerprint: FpString(9), Winner: Candidate{Method: "pcg", Precond: "jacobi"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(9); !ok {
		t.Error("memory-only store lost its entry")
	}
}

// TestCandidateString pins the compact rendering used in logs and reports.
func TestCandidateString(t *testing.T) {
	c := Candidate{Method: "spcg", S: 8, Basis: "chebyshev", Precond: "jacobi"}
	if got := c.String(); got != "spcg(s=8,chebyshev)+jacobi" {
		t.Errorf("String() = %q", got)
	}
	c = Candidate{Method: "pcg", Precond: "ssor:1.2"}
	if got := c.String(); got != "pcg+ssor:1.2" {
		t.Errorf("String() = %q", got)
	}
}

// TestEndToEndTuneIllConditioned is the package-level version of the
// acceptance scenario: on an anisotropic operator the tuner must never
// select a monomial-at-large-s configuration (it either never ran — pruned —
// or broke down/underperformed in trials) and must hand back a usable
// winner.
func TestEndToEndTuneIllConditioned(t *testing.T) {
	a := sparse.Anisotropic2D(24, 24, 1e-3)
	cfg := Config{
		SValues:  []int{4, 8, 16},
		Preconds: []string{"jacobi"},
		Rounds:   2,
	}
	plan, err := Seed(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(plan, &DirectRunner{A: a}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Winner.Basis == "monomial" && d.Winner.S > 4 {
		t.Errorf("tuner selected a fragile monomial configuration: %v", d.Winner)
	}
	for _, tr := range d.Trials {
		if tr.Eliminated == "" {
			continue
		}
		for _, rc := range d.Ranked {
			if rc.Candidate == tr.Candidate {
				t.Errorf("eliminated candidate %v present in ranked list", tr.Candidate)
			}
		}
	}
	// The winner must actually solve the system.
	o := (&DirectRunner{A: a}).Probe(d.Winner, 20000, 1e-8)
	if o.Breakdown != "" || o.Err != "" || !o.Converged {
		t.Errorf("winner %v does not solve the system: %+v", d.Winner, o)
	}
}
